#include "src/core/pretty.h"

#include <sstream>

#include "src/runtime/error.h"

namespace ldb {

namespace {

void Print(const ExprPtr& e, std::ostringstream& os);

void PrintQuals(const std::vector<Qualifier>& quals, std::ostringstream& os) {
  bool first = true;
  for (const Qualifier& q : quals) {
    if (!first) os << ", ";
    first = false;
    if (q.is_generator) {
      os << q.var << " <- ";
      Print(q.expr, os);
    } else {
      Print(q.expr, os);
    }
  }
}

void Print(const ExprPtr& e, std::ostringstream& os) {
  if (!e) {
    os << "<null-expr>";
    return;
  }
  switch (e->kind) {
    case ExprKind::kVar:
      os << e->name;
      return;
    case ExprKind::kLiteral:
      os << e->literal.ToString();
      return;
    case ExprKind::kRecord: {
      os << '<';
      bool first = true;
      for (const auto& [n, f] : e->fields) {
        if (!first) os << ", ";
        first = false;
        os << n << '=';
        Print(f, os);
      }
      os << '>';
      return;
    }
    case ExprKind::kProj:
      Print(e->a, os);
      os << '.' << e->name;
      return;
    case ExprKind::kIf:
      os << "if ";
      Print(e->a, os);
      os << " then ";
      Print(e->b, os);
      os << " else ";
      Print(e->c, os);
      return;
    case ExprKind::kBinOp:
      os << '(';
      Print(e->a, os);
      os << ' ' << BinOpName(e->bin_op) << ' ';
      Print(e->b, os);
      os << ')';
      return;
    case ExprKind::kUnOp:
      os << UnOpName(e->un_op) << '(';
      Print(e->a, os);
      os << ')';
      return;
    case ExprKind::kLambda:
      os << "\\" << e->name << ". ";
      Print(e->a, os);
      return;
    case ExprKind::kApply:
      Print(e->a, os);
      os << '(';
      Print(e->b, os);
      os << ')';
      return;
    case ExprKind::kComp: {
      os << MonoidName(e->monoid) << "{ ";
      Print(e->a, os);
      if (!e->quals.empty()) {
        os << " | ";
        PrintQuals(e->quals, os);
      }
      os << " }";
      return;
    }
    case ExprKind::kMerge:
      os << '(';
      Print(e->a, os);
      os << " (+)" << MonoidName(e->monoid) << ' ';
      Print(e->b, os);
      os << ')';
      return;
    case ExprKind::kZero:
      os << "zero[" << MonoidName(e->monoid) << ']';
      return;
  }
}

void PrintOp(const AlgPtr& op, int indent, std::ostringstream& os) {
  os << std::string(static_cast<size_t>(indent) * 2, ' ');
  if (!op) {
    os << "<null-plan>\n";
    return;
  }
  auto pred_suffix = [&]() -> std::string {
    if (op->pred && !op->pred->IsTrueLiteral()) {
      return " if " + PrintExpr(op->pred);
    }
    return "";
  };
  switch (op->kind) {
    case AlgKind::kUnit:
      os << "Unit\n";
      return;
    case AlgKind::kScan:
      os << "Scan[" << op->var << " <- " << op->extent << pred_suffix() << "]\n";
      return;
    case AlgKind::kSelect:
      os << "Select[" << PrintExpr(op->pred) << "]\n";
      PrintOp(op->left, indent + 1, os);
      return;
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin:
      os << (op->kind == AlgKind::kJoin ? "Join[" : "OuterJoin[")
         << PrintExpr(op->pred) << "]\n";
      PrintOp(op->left, indent + 1, os);
      PrintOp(op->right, indent + 1, os);
      return;
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest:
      os << (op->kind == AlgKind::kUnnest ? "Unnest[" : "OuterUnnest[")
         << op->var << " := " << PrintExpr(op->path) << pred_suffix() << "]\n";
      PrintOp(op->left, indent + 1, os);
      return;
    case AlgKind::kNest: {
      os << "Nest[" << MonoidName(op->monoid) << '/' << PrintExpr(op->head)
         << " -> " << op->var << " group_by(";
      bool first = true;
      for (const auto& [n, k] : op->group_by) {
        if (!first) os << ", ";
        first = false;
        if (k->kind == ExprKind::kVar && k->name == n) {
          os << n;
        } else {
          os << n << '=' << PrintExpr(k);
        }
      }
      os << ") nulls(";
      first = true;
      for (const std::string& v : op->null_vars) {
        if (!first) os << ", ";
        first = false;
        os << v;
      }
      os << ')' << pred_suffix() << "]\n";
      PrintOp(op->left, indent + 1, os);
      return;
    }
    case AlgKind::kReduce:
      os << "Reduce[" << MonoidName(op->monoid) << '/' << PrintExpr(op->head)
         << pred_suffix() << "]\n";
      PrintOp(op->left, indent + 1, os);
      return;
  }
}

void Shape(const AlgPtr& op, std::ostringstream& os) {
  if (!op) return;
  switch (op->kind) {
    case AlgKind::kUnit:
      os << "Unit";
      return;
    case AlgKind::kScan:
      os << "Scan(" << op->extent << ')';
      return;
    case AlgKind::kSelect:
      os << "Select(";
      Shape(op->left, os);
      os << ')';
      return;
    case AlgKind::kJoin:
    case AlgKind::kOuterJoin:
      os << (op->kind == AlgKind::kJoin ? "Join(" : "OuterJoin(");
      Shape(op->left, os);
      os << ',';
      Shape(op->right, os);
      os << ')';
      return;
    case AlgKind::kUnnest:
    case AlgKind::kOuterUnnest:
      os << (op->kind == AlgKind::kUnnest ? "Unnest(" : "OuterUnnest(");
      Shape(op->left, os);
      os << ')';
      return;
    case AlgKind::kNest:
      os << "Nest(";
      Shape(op->left, os);
      os << ')';
      return;
    case AlgKind::kReduce:
      os << "Reduce(";
      Shape(op->left, os);
      os << ')';
      return;
  }
}

}  // namespace

std::string PrintExpr(const ExprPtr& e) {
  std::ostringstream os;
  Print(e, os);
  return os.str();
}

std::string PrintPlan(const AlgPtr& op) {
  std::ostringstream os;
  PrintOp(op, 0, os);
  return os.str();
}

std::string PlanShape(const AlgPtr& op) {
  std::ostringstream os;
  Shape(op, os);
  return os.str();
}

}  // namespace ldb
