#include "src/core/monoid.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "src/runtime/error.h"

namespace ldb {

bool IsCollectionMonoid(MonoidKind k) {
  return k == MonoidKind::kSet || k == MonoidKind::kBag || k == MonoidKind::kList;
}

bool IsIdempotentMonoid(MonoidKind k) {
  switch (k) {
    case MonoidKind::kSet:
    case MonoidKind::kMax:
    case MonoidKind::kMin:
    case MonoidKind::kSome:
    case MonoidKind::kAll:
      return true;
    default:
      return false;
  }
}

bool IsCommutativeMonoid(MonoidKind k) { return k != MonoidKind::kList; }

const char* MonoidName(MonoidKind k) {
  switch (k) {
    case MonoidKind::kSet:  return "set";
    case MonoidKind::kBag:  return "bag";
    case MonoidKind::kList: return "list";
    case MonoidKind::kSum:  return "sum";
    case MonoidKind::kProd: return "prod";
    case MonoidKind::kMax:  return "max";
    case MonoidKind::kMin:  return "min";
    case MonoidKind::kSome: return "some";
    case MonoidKind::kAll:  return "all";
    case MonoidKind::kAvg:  return "avg";
  }
  return "?";
}

Value MonoidZero(MonoidKind k) {
  switch (k) {
    case MonoidKind::kSet:  return Value::Set({});
    case MonoidKind::kBag:  return Value::Bag({});
    case MonoidKind::kList: return Value::List({});
    case MonoidKind::kSum:  return Value::Int(0);
    case MonoidKind::kProd: return Value::Int(1);
    case MonoidKind::kMax:  return Value::Null();
    case MonoidKind::kMin:  return Value::Null();
    case MonoidKind::kSome: return Value::Bool(false);
    case MonoidKind::kAll:  return Value::Bool(true);
    case MonoidKind::kAvg:  return Value::Null();
  }
  throw InternalError("bad monoid");
}

Value MonoidUnit(MonoidKind k, const Value& v) {
  switch (k) {
    case MonoidKind::kSet:  return Value::Set({v});
    case MonoidKind::kBag:  return Value::Bag({v});
    case MonoidKind::kList: return Value::List({v});
    default:                return v;  // primitive monoids: unit is identity
  }
}

namespace {

Value NumericMerge(MonoidKind k, const Value& a, const Value& b) {
  bool both_int =
      a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt;
  double x = a.AsNumeric(), y = b.AsNumeric();
  double r;
  switch (k) {
    case MonoidKind::kSum:  r = x + y; break;
    case MonoidKind::kProd: r = x * y; break;
    case MonoidKind::kMax:  r = std::max(x, y); break;
    case MonoidKind::kMin:  r = std::min(x, y); break;
    default: throw InternalError("not numeric monoid");
  }
  if (both_int) return Value::Int(static_cast<int64_t>(r));
  return Value::Real(r);
}

}  // namespace

Value MonoidMerge(MonoidKind k, const Value& a, const Value& b) {
  // NULL is an identity for every monoid.
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  switch (k) {
    case MonoidKind::kSet:
    case MonoidKind::kBag:
    case MonoidKind::kList: {
      Elems out = a.AsElems();
      const Elems& more = b.AsElems();
      out.insert(out.end(), more.begin(), more.end());
      if (k == MonoidKind::kSet) return Value::Set(std::move(out));
      if (k == MonoidKind::kBag) return Value::Bag(std::move(out));
      return Value::List(std::move(out));
    }
    case MonoidKind::kSum:
    case MonoidKind::kProd:
    case MonoidKind::kMax:
    case MonoidKind::kMin:
      return NumericMerge(k, a, b);
    case MonoidKind::kSome:
      return Value::Bool(a.AsBool() || b.AsBool());
    case MonoidKind::kAll:
      return Value::Bool(a.AsBool() && b.AsBool());
    case MonoidKind::kAvg:
      throw UnsupportedError("avg values do not merge; use Accumulator");
  }
  throw InternalError("bad monoid");
}

TypePtr MonoidHeadConstraint(MonoidKind k) {
  switch (k) {
    case MonoidKind::kSum:
    case MonoidKind::kProd:
    case MonoidKind::kMax:
    case MonoidKind::kMin:
    case MonoidKind::kAvg:
      return Type::Real();  // numeric (int unifies with real)
    case MonoidKind::kSome:
    case MonoidKind::kAll:
      return Type::Bool();
    default:
      return nullptr;
  }
}

TypePtr MonoidResultType(MonoidKind k, const TypePtr& head) {
  switch (k) {
    case MonoidKind::kSet:  return Type::Set(head);
    case MonoidKind::kBag:  return Type::Bag(head);
    case MonoidKind::kList: return Type::List(head);
    case MonoidKind::kSum:
    case MonoidKind::kProd:
    case MonoidKind::kMax:
    case MonoidKind::kMin:
      return head->kind() == Type::Kind::kInt ? Type::Int() : Type::Real();
    case MonoidKind::kAvg:  return Type::Real();
    case MonoidKind::kSome:
    case MonoidKind::kAll:
      return Type::Bool();
  }
  throw InternalError("bad monoid");
}

// -- ExactSum ----------------------------------------------------------------

void ExactSum::Add(double v) {
  if (v == 0.0) return;  // ±0 contributes nothing
  if (!std::isfinite(v)) {
    nonfinite_ = has_nonfinite_ ? nonfinite_ + v : v;
    has_nonfinite_ = true;
    return;
  }
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  const bool neg = (bits >> 63) != 0;
  int exp = static_cast<int>((bits >> 52) & 0x7FF);
  uint64_t mant = bits & ((uint64_t{1} << 52) - 1);
  if (exp == 0) {
    exp = 1;  // subnormal: same scale, no implicit bit
  } else {
    mant |= uint64_t{1} << 52;
  }
  // v = ±mant * 2^(exp - 1075); the mantissa's lowest bit lands at array
  // bit index (exp - 1075) - kBias.
  const int pos = exp - 1075 - kBias;
  const int limb = pos >> 5;
  const int shift = pos & 31;
  const unsigned __int128 m = static_cast<unsigned __int128>(mant) << shift;
  const int64_t d0 = static_cast<uint32_t>(m);
  const int64_t d1 = static_cast<uint32_t>(m >> 32);
  const int64_t d2 = static_cast<uint32_t>(m >> 64);
  if (neg) {
    limbs_[limb] -= d0;
    limbs_[limb + 1] -= d1;
    limbs_[limb + 2] -= d2;
  } else {
    limbs_[limb] += d0;
    limbs_[limb + 1] += d1;
    limbs_[limb + 2] += d2;
  }
  if (++pending_ >= (1 << 29)) Normalize();
}

void ExactSum::AddInt(int64_t v) {
  // Split into halves that are each exactly representable as doubles.
  const int64_t hi = v >> 32;
  const int64_t lo = v & 0xFFFFFFFF;
  Add(std::ldexp(static_cast<double>(hi), 32));
  Add(static_cast<double>(lo));
}

void ExactSum::Normalize() {
  int64_t carry = 0;
  for (int i = 0; i < kLimbs - 1; ++i) {
    const int64_t t = limbs_[i] + carry;
    carry = t >> 32;  // arithmetic shift: floor(t / 2^32)
    limbs_[i] = t - (carry << 32);
  }
  limbs_[kLimbs - 1] += carry;  // top limb stays 64-bit signed
  pending_ = 0;
}

void ExactSum::Absorb(const ExactSum& other) {
  ExactSum tmp = other;
  tmp.Normalize();
  Normalize();
  for (int i = 0; i < kLimbs; ++i) limbs_[i] += tmp.limbs_[i];
  pending_ = 1;
  if (tmp.has_nonfinite_) {
    nonfinite_ = has_nonfinite_ ? nonfinite_ + tmp.nonfinite_ : tmp.nonfinite_;
    has_nonfinite_ = true;
  }
}

double ExactSum::Round() const {
  if (has_nonfinite_) return nonfinite_;
  // Full carry propagation into unsigned 32-bit digits.
  uint64_t dig[kLimbs];
  int64_t carry = 0;
  for (int i = 0; i < kLimbs; ++i) {
    const int64_t t = limbs_[i] + carry;
    carry = t >> 32;
    dig[i] = static_cast<uint64_t>(t - (carry << 32));
  }
  int sign = 1;
  if (carry < 0) {  // negative total: two's-complement negate
    sign = -1;
    uint64_t c = 1;
    for (int i = 0; i < kLimbs; ++i) {
      const uint64_t d = (~dig[i] & 0xFFFFFFFFu) + c;
      dig[i] = d & 0xFFFFFFFFu;
      c = d >> 32;
    }
  } else if (carry > 0) {
    return HUGE_VAL;  // beyond double range (unreachable for in-range data)
  }
  int top = kLimbs - 1;
  while (top >= 0 && dig[top] == 0) --top;
  if (top < 0) return 0.0;
  const int msb_in = 31 - std::countl_zero(static_cast<uint32_t>(dig[top]));
  const long msb = 32L * top + msb_in + kBias;  // weight exponent of the MSB
  // Keep 53 bits for normal results, fewer when the result is subnormal.
  const int prec =
      msb >= -1022 ? 53 : static_cast<int>(msb + 1074 + 1);
  auto bit_at = [&](long w) -> uint64_t {  // bit of weight 2^w
    const long idx = w - kBias;
    if (idx < 0) return 0;
    return (dig[idx >> 5] >> (idx & 31)) & 1;
  };
  uint64_t mant = 0;
  for (int i = 0; i < prec; ++i) mant = (mant << 1) | bit_at(msb - i);
  const uint64_t round_bit = bit_at(msb - prec);
  bool sticky = false;
  const long low_idx = (msb - prec) - kBias;  // array index of the round bit
  for (long i = 0; i < low_idx >> 5 && !sticky; ++i) sticky = dig[i] != 0;
  if (!sticky && low_idx > 0) {
    const uint64_t below =
        dig[low_idx >> 5] & ((uint64_t{1} << (low_idx & 31)) - 1);
    sticky = below != 0;
  }
  if (round_bit && (sticky || (mant & 1))) ++mant;  // round half to even
  const double result =
      std::ldexp(static_cast<double>(mant), static_cast<int>(msb - prec + 1));
  return sign < 0 ? -result : result;
}

// -- Accumulator -------------------------------------------------------------

Accumulator::Accumulator(MonoidKind kind)
    : kind_(kind), current_(MonoidZero(kind)) {}

void Accumulator::Add(const Value& v) {
  if (v.is_null()) return;  // NULL contributes the zero element
  switch (kind_) {
    case MonoidKind::kSet:
    case MonoidKind::kBag:
    case MonoidKind::kList:
      elems_.push_back(v);
      return;
    case MonoidKind::kAvg:
      sum_.Add(v.AsNumeric());
      avg_count_ += 1;
      return;
    case MonoidKind::kSum:
      if (v.kind() == Value::Kind::kInt) {
        int_sum_ += v.AsInt();
      } else {
        sum_.Add(v.AsNumeric());
        sum_has_real_ = true;
      }
      has_value_ = true;
      return;
    default:
      if (!has_value_ && (kind_ == MonoidKind::kMax || kind_ == MonoidKind::kMin)) {
        current_ = v;
      } else {
        current_ = MonoidMerge(kind_, current_, v);
      }
      has_value_ = true;
      return;
  }
}

void Accumulator::Merge(const Value& v) {
  if (v.is_null()) return;
  switch (kind_) {
    case MonoidKind::kSet:
    case MonoidKind::kBag:
    case MonoidKind::kList: {
      const Elems& more = v.AsElems();
      elems_.insert(elems_.end(), more.begin(), more.end());
      return;
    }
    case MonoidKind::kAvg:
      throw UnsupportedError("avg values do not merge");
    default:
      Add(v);
      return;
  }
}

void Accumulator::Absorb(const Accumulator& other) {
  LDB_INTERNAL_CHECK(other.kind_ == kind_, "absorbing mismatched monoids");
  switch (kind_) {
    case MonoidKind::kSet:
    case MonoidKind::kBag:
    case MonoidKind::kList:
      elems_.insert(elems_.end(), other.elems_.begin(), other.elems_.end());
      return;
    case MonoidKind::kAvg:
      sum_.Absorb(other.sum_);
      avg_count_ += other.avg_count_;
      return;
    case MonoidKind::kSum:
      int_sum_ += other.int_sum_;
      sum_.Absorb(other.sum_);
      sum_has_real_ = sum_has_real_ || other.sum_has_real_;
      has_value_ = has_value_ || other.has_value_;
      return;
    default:
      if (other.has_value_) Add(other.current_);
      return;
  }
}

bool Accumulator::Saturated() const {
  if (kind_ == MonoidKind::kSome) {
    return has_value_ && current_.kind() == Value::Kind::kBool && current_.AsBool();
  }
  if (kind_ == MonoidKind::kAll) {
    return has_value_ && current_.kind() == Value::Kind::kBool && !current_.AsBool();
  }
  return false;
}

Value Accumulator::Finish() {
  switch (kind_) {
    case MonoidKind::kSet:  return Value::Set(std::move(elems_));
    case MonoidKind::kBag:  return Value::Bag(std::move(elems_));
    case MonoidKind::kList: return Value::List(std::move(elems_));
    case MonoidKind::kAvg:
      if (avg_count_ == 0) return Value::Null();
      return Value::Real(sum_.Round() / static_cast<double>(avg_count_));
    case MonoidKind::kSum:
      // Result is an int iff every input was an int (the zero is Int(0)).
      if (!sum_has_real_) return Value::Int(int_sum_);
      {
        ExactSum total = sum_;
        total.AddInt(int_sum_);
        return Value::Real(total.Round());
      }
    default:
      return current_;
  }
}

}  // namespace ldb
