#include "src/core/monoid.h"

#include <algorithm>

#include "src/runtime/error.h"

namespace ldb {

bool IsCollectionMonoid(MonoidKind k) {
  return k == MonoidKind::kSet || k == MonoidKind::kBag || k == MonoidKind::kList;
}

bool IsIdempotentMonoid(MonoidKind k) {
  switch (k) {
    case MonoidKind::kSet:
    case MonoidKind::kMax:
    case MonoidKind::kMin:
    case MonoidKind::kSome:
    case MonoidKind::kAll:
      return true;
    default:
      return false;
  }
}

bool IsCommutativeMonoid(MonoidKind k) { return k != MonoidKind::kList; }

const char* MonoidName(MonoidKind k) {
  switch (k) {
    case MonoidKind::kSet:  return "set";
    case MonoidKind::kBag:  return "bag";
    case MonoidKind::kList: return "list";
    case MonoidKind::kSum:  return "sum";
    case MonoidKind::kProd: return "prod";
    case MonoidKind::kMax:  return "max";
    case MonoidKind::kMin:  return "min";
    case MonoidKind::kSome: return "some";
    case MonoidKind::kAll:  return "all";
    case MonoidKind::kAvg:  return "avg";
  }
  return "?";
}

Value MonoidZero(MonoidKind k) {
  switch (k) {
    case MonoidKind::kSet:  return Value::Set({});
    case MonoidKind::kBag:  return Value::Bag({});
    case MonoidKind::kList: return Value::List({});
    case MonoidKind::kSum:  return Value::Int(0);
    case MonoidKind::kProd: return Value::Int(1);
    case MonoidKind::kMax:  return Value::Null();
    case MonoidKind::kMin:  return Value::Null();
    case MonoidKind::kSome: return Value::Bool(false);
    case MonoidKind::kAll:  return Value::Bool(true);
    case MonoidKind::kAvg:  return Value::Null();
  }
  throw InternalError("bad monoid");
}

Value MonoidUnit(MonoidKind k, const Value& v) {
  switch (k) {
    case MonoidKind::kSet:  return Value::Set({v});
    case MonoidKind::kBag:  return Value::Bag({v});
    case MonoidKind::kList: return Value::List({v});
    default:                return v;  // primitive monoids: unit is identity
  }
}

namespace {

Value NumericMerge(MonoidKind k, const Value& a, const Value& b) {
  bool both_int =
      a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt;
  double x = a.AsNumeric(), y = b.AsNumeric();
  double r;
  switch (k) {
    case MonoidKind::kSum:  r = x + y; break;
    case MonoidKind::kProd: r = x * y; break;
    case MonoidKind::kMax:  r = std::max(x, y); break;
    case MonoidKind::kMin:  r = std::min(x, y); break;
    default: throw InternalError("not numeric monoid");
  }
  if (both_int) return Value::Int(static_cast<int64_t>(r));
  return Value::Real(r);
}

}  // namespace

Value MonoidMerge(MonoidKind k, const Value& a, const Value& b) {
  // NULL is an identity for every monoid.
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  switch (k) {
    case MonoidKind::kSet:
    case MonoidKind::kBag:
    case MonoidKind::kList: {
      Elems out = a.AsElems();
      const Elems& more = b.AsElems();
      out.insert(out.end(), more.begin(), more.end());
      if (k == MonoidKind::kSet) return Value::Set(std::move(out));
      if (k == MonoidKind::kBag) return Value::Bag(std::move(out));
      return Value::List(std::move(out));
    }
    case MonoidKind::kSum:
    case MonoidKind::kProd:
    case MonoidKind::kMax:
    case MonoidKind::kMin:
      return NumericMerge(k, a, b);
    case MonoidKind::kSome:
      return Value::Bool(a.AsBool() || b.AsBool());
    case MonoidKind::kAll:
      return Value::Bool(a.AsBool() && b.AsBool());
    case MonoidKind::kAvg:
      throw UnsupportedError("avg values do not merge; use Accumulator");
  }
  throw InternalError("bad monoid");
}

TypePtr MonoidHeadConstraint(MonoidKind k) {
  switch (k) {
    case MonoidKind::kSum:
    case MonoidKind::kProd:
    case MonoidKind::kMax:
    case MonoidKind::kMin:
    case MonoidKind::kAvg:
      return Type::Real();  // numeric (int unifies with real)
    case MonoidKind::kSome:
    case MonoidKind::kAll:
      return Type::Bool();
    default:
      return nullptr;
  }
}

TypePtr MonoidResultType(MonoidKind k, const TypePtr& head) {
  switch (k) {
    case MonoidKind::kSet:  return Type::Set(head);
    case MonoidKind::kBag:  return Type::Bag(head);
    case MonoidKind::kList: return Type::List(head);
    case MonoidKind::kSum:
    case MonoidKind::kProd:
    case MonoidKind::kMax:
    case MonoidKind::kMin:
      return head->kind() == Type::Kind::kInt ? Type::Int() : Type::Real();
    case MonoidKind::kAvg:  return Type::Real();
    case MonoidKind::kSome:
    case MonoidKind::kAll:
      return Type::Bool();
  }
  throw InternalError("bad monoid");
}

Accumulator::Accumulator(MonoidKind kind)
    : kind_(kind), current_(MonoidZero(kind)) {}

void Accumulator::Add(const Value& v) {
  if (v.is_null()) return;  // NULL contributes the zero element
  switch (kind_) {
    case MonoidKind::kSet:
    case MonoidKind::kBag:
    case MonoidKind::kList:
      elems_.push_back(v);
      return;
    case MonoidKind::kAvg:
      avg_sum_ += v.AsNumeric();
      avg_count_ += 1;
      return;
    default:
      if (!has_value_ && (kind_ == MonoidKind::kMax || kind_ == MonoidKind::kMin)) {
        current_ = v;
      } else {
        current_ = MonoidMerge(kind_, current_, v);
      }
      has_value_ = true;
      return;
  }
}

void Accumulator::Merge(const Value& v) {
  if (v.is_null()) return;
  switch (kind_) {
    case MonoidKind::kSet:
    case MonoidKind::kBag:
    case MonoidKind::kList: {
      const Elems& more = v.AsElems();
      elems_.insert(elems_.end(), more.begin(), more.end());
      return;
    }
    case MonoidKind::kAvg:
      throw UnsupportedError("avg values do not merge");
    default:
      Add(v);
      return;
  }
}

bool Accumulator::Saturated() const {
  if (kind_ == MonoidKind::kSome) {
    return has_value_ && current_.kind() == Value::Kind::kBool && current_.AsBool();
  }
  if (kind_ == MonoidKind::kAll) {
    return has_value_ && current_.kind() == Value::Kind::kBool && !current_.AsBool();
  }
  return false;
}

Value Accumulator::Finish() {
  switch (kind_) {
    case MonoidKind::kSet:  return Value::Set(std::move(elems_));
    case MonoidKind::kBag:  return Value::Bag(std::move(elems_));
    case MonoidKind::kList: return Value::List(std::move(elems_));
    case MonoidKind::kAvg:
      if (avg_count_ == 0) return Value::Null();
      return Value::Real(avg_sum_ / static_cast<double>(avg_count_));
    default:
      return current_;
  }
}

}  // namespace ldb
