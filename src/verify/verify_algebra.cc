// Algebra-layer verification: Figure 6 operator typing, Theorem 1, and the
// Section 3/5 null→zero discipline. See verify.h and docs/VERIFIER.md.

#include <chrono>
#include <set>
#include <string>

#include "src/core/pretty.h"
#include "src/core/typecheck.h"
#include "src/verify/verify.h"

namespace ldb {

namespace {

class AlgebraChecker {
 public:
  explicit AlgebraChecker(VerifyReport* report) : report_(report) {}

  // Facts about an operator's output stream that the O7 check needs:
  // `nullable` holds the variables that may be bound to NULL (outer-join /
  // outer-unnest padding); `seeds` holds the variables bound by the stream's
  // leftmost scan — the (C1) seed of the branch. The unnesting algorithm
  // null-converts every generator of an inner box, and when an uncorrelated
  // box starts a fresh branch its first generator is introduced by a plain
  // seed scan, so that null-var can never actually be NULL (the conversion
  // is vacuous but legitimate).
  struct StreamFacts {
    std::set<std::string> nullable;
    std::set<std::string> seeds;
  };

  // Walks the plan top-down, propagating StreamFacts bottom-up (nest group
  // keys that are identity bindings pass both properties through).
  StreamFacts Check(const AlgPtr& op, bool is_root) {
    if (!op) {
      Finding("arity", "null plan node", "");
      return {};
    }
    // Theorem 1: the unnested algebra is flat — no comprehension survives
    // inside any operator expression. (A surviving comprehension would be
    // evaluated per row through the interpreter, which is exactly the
    // nested-loop evaluation the unnesting algorithm exists to eliminate.)
    FlatExpr(op, op->pred, "predicate");
    FlatExpr(op, op->head, "head");
    FlatExpr(op, op->path, "path");
    for (const auto& [name, key] : op->group_by) {
      (void)name;
      FlatExpr(op, key, "group-by key");
    }

    // Reduce is the paper's Δ: it folds the whole stream to the query
    // result, so it can only sit at the plan root (O4).
    Require(op, op->kind == AlgKind::kReduce ? is_root : true, "root-reduce",
            "reduce operator below the plan root");
    if (is_root) {
      Require(op, op->kind == AlgKind::kReduce, "root-reduce",
              "plan root is not a reduce");
    }

    Require(op, op->pred != nullptr, "arity", "operator missing predicate");

    switch (op->kind) {
      case AlgKind::kUnit:
        Require(op, !op->left && !op->right, "arity", "unit with children");
        return {};
      case AlgKind::kScan:
        Require(op, !op->left && !op->right, "arity", "scan with children");
        Require(op, !op->var.empty(), "arity", "scan with empty variable");
        Require(op, !op->extent.empty(), "arity", "scan with empty extent");
        return {{}, {op->var}};
      case AlgKind::kSelect:
        Require(op, op->left && !op->right, "arity",
                "select must have exactly one child");
        return Check(op->left, false);
      case AlgKind::kJoin:
      case AlgKind::kOuterJoin: {
        Require(op, op->left && op->right, "arity", "join missing a child");
        StreamFacts facts = Check(op->left, false);
        StreamFacts right = Check(op->right, false);
        facts.nullable.insert(right.nullable.begin(), right.nullable.end());
        // The combined stream's seed stays the left (leftmost) one: vars
        // joining in from the right were introduced by (C3)/(C6), never (C1).
        if (op->kind == AlgKind::kOuterJoin) {
          // O5: a failed match pads every right-side variable with NULL.
          for (const std::string& v : OutputVars(op->right)) {
            facts.nullable.insert(v);
          }
        }
        return facts;
      }
      case AlgKind::kUnnest:
      case AlgKind::kOuterUnnest: {
        Require(op, op->left && !op->right, "arity",
                "unnest must have exactly one child");
        Require(op, op->path != nullptr, "arity", "unnest missing its path");
        Require(op, !op->var.empty(), "arity", "unnest with empty variable");
        StreamFacts facts = Check(op->left, false);
        if (op->kind == AlgKind::kOuterUnnest) {
          facts.nullable.insert(op->var);  // O6: empty collections pad NULL
        }
        return facts;
      }
      case AlgKind::kNest: {
        Require(op, op->left && !op->right, "arity",
                "nest must have exactly one child");
        Require(op, op->head != nullptr, "arity", "nest missing its head");
        Require(op, !op->var.empty(), "arity",
                "nest with empty output variable");
        StreamFacts child = Check(op->left, false);
        std::set<std::string> group_names;
        for (const auto& [name, key] : op->group_by) {
          (void)key;
          Require(op, !name.empty(), "arity", "group-by with empty name");
          Require(op, group_names.insert(name).second, "arity",
                  "duplicate group-by name '" + name + "'");
        }
        // O7 / rules (C5)-(C7): the null-converted variables are the inner
        // box's own generators. Each was introduced below either by an
        // outer-join / outer-unnest (so a failed match reaches the nest as a
        // NULL-padded row) or — for an uncorrelated box starting a fresh
        // branch — by the branch's (C1) seed scan, which never binds NULL
        // (the conversion is vacuous there). Anything else means the g
        // function is applied to the wrong variable set.
        std::set<std::string> seen_null;
        for (const std::string& v : op->null_vars) {
          Require(op, seen_null.insert(v).second, "O7-null-zero",
                  "duplicate null-var '" + v + "'");
          Require(op, child.nullable.count(v) > 0 || child.seeds.count(v) > 0,
                  "O7-null-zero",
                  "null-var '" + v +
                      "' is neither introduced by an outer-join/outer-unnest "
                      "below the nest nor the branch's seed generator");
        }
        // The nest replaces its input scope: group keys that are identity
        // bindings pass nullability and seed-ness through (the padded NULL
        // is a legitimate group key); the accumulated variable itself is
        // always bound.
        StreamFacts facts;
        for (const auto& [name, key] : op->group_by) {
          if (key && key->kind == ExprKind::kVar) {
            if (child.nullable.count(key->name) > 0) {
              facts.nullable.insert(name);
            }
            if (child.seeds.count(key->name) > 0) facts.seeds.insert(name);
          }
        }
        return facts;
      }
      case AlgKind::kReduce:
        Require(op, op->left && !op->right, "arity",
                "reduce must have exactly one child");
        Require(op, op->head != nullptr, "arity", "reduce missing its head");
        Check(op->left, false);
        return {};
    }
    return {};
  }

 private:
  void Require(const AlgPtr& at, bool cond, const std::string& rule,
               const std::string& detail) {
    ++report_->checks;
    if (!cond) Finding(rule, detail, at ? PlanShape(at) : "");
  }

  void FlatExpr(const AlgPtr& at, const ExprPtr& e, const char* where) {
    if (!e) return;
    ++report_->checks;
    if (ContainsComp(e)) {
      Finding("Thm1-flat",
              std::string("comprehension survives in operator ") + where +
                  ": " + PrintExpr(e),
              PlanShape(at));
    }
  }

  void Finding(const std::string& rule, const std::string& detail,
               const std::string& subtree) {
    report_->findings.push_back({report_->stage, rule, detail, subtree});
  }

  VerifyReport* report_;
};

}  // namespace

VerifyReport VerifyAlgebra(const AlgPtr& plan, const Schema& schema,
                           const std::string& stage_label) {
  auto t0 = std::chrono::steady_clock::now();
  VerifyReport report;
  report.stage = stage_label;

  AlgebraChecker checker(&report);
  checker.Check(plan, /*is_root=*/true);

  if (plan && report.ok()) {
    // Figure 6 typing, bottom-up over the whole plan: every predicate bool,
    // every unnest path a collection, every nest/reduce head compatible with
    // its monoid, every variable bound before use.
    ++report.checks;
    try {
      TypeCheckPlan(plan, schema);
    } catch (const TypeError& err) {
      report.findings.push_back(
          {report.stage, "Fig6-typing", err.what(), PrintPlan(plan)});
    }
  }

  auto t1 = std::chrono::steady_clock::now();
  report.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return report;
}

}  // namespace ldb
