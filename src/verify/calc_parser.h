// A parser for the calculus pretty-printer's output (pretty.h, PrintExpr).
//
// The plan cache keys prepared plans on the pretty-printed normalized
// calculus (docs/SERVICE.md), which silently assumes the printed form is a
// faithful, unambiguous rendering of the term. ParseCalculus makes that
// assumption checkable: random_query_test prints every normalized term,
// re-parses it, re-typechecks it, and asserts the printed form is a fixpoint
// (print → parse → normalize → print is the identity), so two distinct
// queries can never collide on a cache key that under-prints the term.
//
// The grammar is exactly what PrintExpr emits — comprehension syntax
// `monoid{ head | v <- dom, pred }`, fully parenthesized binary operators,
// records `<a=e, b=e>`, lambdas `\v. body`, parameters `$name`, and Value
// literal syntax (value.h, Value::ToString) — not the OQL surface syntax
// (the OQL parser has no comprehension form). Two prints are knowingly
// non-injective and re-parse as the simpler form: a real that prints
// without fraction digits re-parses as an int (the two print identically
// forever after, so cache keys are unaffected), and a record of literals is
// indistinguishable from a tuple literal (same).

#ifndef LAMBDADB_VERIFY_CALC_PARSER_H_
#define LAMBDADB_VERIFY_CALC_PARSER_H_

#include <string>

#include "src/core/expr.h"

namespace ldb {

/// Parses a term printed by PrintExpr back into a calculus AST. Throws
/// ParseError (with a position) on input the printer could not have emitted.
ExprPtr ParseCalculus(const std::string& text);

}  // namespace ldb

#endif  // LAMBDADB_VERIFY_CALC_PARSER_H_
