// PlanVerifier: static invariant checking across every IR the compiler
// produces (docs/VERIFIER.md).
//
// The paper states its guarantees as theorems — Figure 3/Figure 6 typing,
// Theorem 1 (the unnested algebra contains no nested subqueries), Theorem 2
// (soundness of rules (C1)-(C9)) — but a rewrite bug would only surface as a
// wrong answer at runtime. The verifier re-checks the theorems' statically
// checkable content after each stage:
//
//   * VerifyCalculus — Figure 3 typing, scope/free-variable discipline, and
//     (for post-normalize terms) the Figure 4 normal form: no (N1)-(N9)
//     redex remains, established by re-running the normalizer to a fixpoint;
//   * VerifyAlgebra  — Figure 6 operator typing for (O1)-(O7), Theorem 1
//     structurally (no comprehension inside any operator expression), the
//     reduce-only-at-root plan shape, and the Section 3/5 null→zero
//     discipline: every nest null-var must be introduced below it by an
//     outer-join / outer-unnest (NULL-padded on failed matches) or by the
//     branch's seed scan (an uncorrelated box's first generator — never
//     NULL, so the conversion is vacuous but legitimate);
//   * VerifySlotPlan — dataflow over the slot-compiled plan: every slot read
//     is dominated by a write, parameter slots are reserved outside operator
//     spans (written before rows flow), no two operators claim the same slot
//     (the static analog of "no two concurrent morsel pipelines write the
//     same non-accumulator slot" — workers own private frames, so
//     single-writer-per-slot is the shared-plan invariant), covering spans
//     nest properly, and nest null-slots are genuine padding slots.
//
// Violations are collected as structured VerifyFinding diagnostics (stage,
// rule, pretty-printed offending subtree); ThrowIfFailed raises VerifyError.
// The optimizer runs all three layers behind OptimizerOptions::verify_plans
// (on by default in Debug builds) and records per-stage summaries in the
// CompileTrace.

#ifndef LAMBDADB_VERIFY_VERIFY_H_
#define LAMBDADB_VERIFY_VERIFY_H_

#include <string>
#include <vector>

#include "src/core/algebra.h"
#include "src/core/expr.h"
#include "src/core/optimizer.h"
#include "src/runtime/error.h"
#include "src/runtime/schema.h"
#include "src/runtime/slot_plan.h"

namespace ldb {

/// One invariant violation: which pipeline stage's IR, which rule (named
/// after the paper figure/theorem it enforces), what went wrong, and the
/// pretty-printed offending subtree.
struct VerifyFinding {
  std::string stage;    ///< "calculus-input" | "calculus-normalized" |
                        ///< "algebra-unnested" | "algebra-simplified" |
                        ///< "slot-plan"
  std::string rule;     ///< e.g. "Fig3-typing", "Thm1-flat", "read-before-write"
  std::string detail;   ///< human-readable description of the violation
  std::string subtree;  ///< pretty-printed offending subtree (may be empty)

  std::string ToString() const;
};

/// The result of verifying one IR: the stage label, how many individual
/// invariants were checked, the wall time spent, and any findings.
struct VerifyReport {
  std::string stage;
  int checks = 0;
  double ms = 0;
  std::vector<VerifyFinding> findings;

  bool ok() const { return findings.empty(); }
  std::string ToString() const;
  /// Throws VerifyError carrying the first finding if any were recorded.
  void ThrowIfFailed() const;
};

/// Raised when a verified IR violates a checked invariant. Carries the stage
/// and rule of the first finding so callers (and tests) can tell which layer
/// rejected the plan.
class VerifyError : public Error {
 public:
  VerifyError(const VerifyFinding& first, size_t n_findings);

  const std::string& stage() const { return stage_; }
  const std::string& rule() const { return rule_; }

 private:
  std::string stage_;
  std::string rule_;
};

/// Which calculus pipeline point is being verified. Post-normalize terms
/// additionally get the Figure 4 normal-form check.
enum class CalculusStage {
  kInput,       ///< after parse/translate, before normalization
  kNormalized,  ///< after Figure 4 normalization (normal form asserted)
};

/// Checks a calculus term: well-formedness, Figure 3 typing, free variables
/// all declared extents, and (kNormalized) that no (N1)-(N9) redex remains.
/// `stage_label` overrides the default report/finding label ("calculus-input"
/// / "calculus-normalized") when non-empty.
VerifyReport VerifyCalculus(const ExprPtr& e, const Schema& schema,
                            CalculusStage stage,
                            const std::string& stage_label = "");

/// Checks an algebra plan: Figure 6 typing, Theorem 1, reduce-at-root shape,
/// and the null→zero discipline. `stage_label` names the pipeline point
/// ("algebra-unnested" / "algebra-simplified").
VerifyReport VerifyAlgebra(const AlgPtr& plan, const Schema& schema,
                           const std::string& stage_label);

/// Dataflow analysis over a slot-compiled plan (no database needed — extent
/// references were resolved to constants at slot-compile time).
VerifyReport VerifySlotPlan(const SlotPlan& plan);

/// Verifies every IR a Compile produced: the input calculus, the normalized
/// term (normal form asserted only when `expect_normal_form`), the unnested
/// plan, and — when distinct — the simplified plan. Slot plans are verified
/// separately (VerifySlotPlan) where they are compiled.
std::vector<VerifyReport> VerifyCompiledQuery(const CompiledQuery& q,
                                              const Schema& schema,
                                              bool expect_normal_form = true);

/// Throws VerifyError for the first failing report, if any.
void ThrowOnFindings(const std::vector<VerifyReport>& reports);

/// Appends a report's summary (stage, checks, findings, ms) to a trace.
/// No-op when `trace` is null.
void RecordVerifyStage(CompileTrace* trace, const VerifyReport& report);

}  // namespace ldb

#endif  // LAMBDADB_VERIFY_VERIFY_H_
