// Calculus-layer verification: Figure 3 typing, scope discipline, and the
// Figure 4 normal form. See verify.h and docs/VERIFIER.md.

#include <chrono>
#include <functional>
#include <set>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/core/typecheck.h"
#include "src/verify/verify.h"

namespace ldb {

namespace {

// Collects structural ("well-formed") findings: every node must carry the
// children/fields its kind requires. The type checker assumes these hold and
// would crash or misreport on a malformed tree, so they run first.
class CalculusChecker {
 public:
  explicit CalculusChecker(VerifyReport* report) : report_(report) {}

  void Check(const ExprPtr& e) {
    if (!e) {
      Finding("well-formed", "null expression node", "");
      return;
    }
    switch (e->kind) {
      case ExprKind::kVar:
        Require(!e->name.empty(), "variable with empty name", e);
        break;
      case ExprKind::kParam:
        Require(!e->name.empty(), "parameter with empty name", e);
        break;
      case ExprKind::kLiteral:
      case ExprKind::kZero:
        Count();
        break;
      case ExprKind::kRecord: {
        std::set<std::string> seen;
        for (const auto& [name, field] : e->fields) {
          Require(!name.empty(), "record field with empty name", e);
          // Figure 3 types records by attribute name; duplicates would make
          // projection ambiguous.
          Require(seen.insert(name).second,
                  "duplicate record field '" + name + "'", e);
          Check(field);
        }
        break;
      }
      case ExprKind::kProj:
        Require(!e->name.empty(), "projection with empty attribute", e);
        Check(e->a);
        break;
      case ExprKind::kIf:
        Require(e->a && e->b && e->c, "if-expression missing a branch", e);
        Check(e->a);
        Check(e->b);
        Check(e->c);
        break;
      case ExprKind::kBinOp:
      case ExprKind::kMerge:
        Require(e->a && e->b, "binary node missing an operand", e);
        Check(e->a);
        Check(e->b);
        break;
      case ExprKind::kUnOp:
        Require(e->a != nullptr, "unary node missing its operand", e);
        Check(e->a);
        break;
      case ExprKind::kLambda:
        Require(!e->name.empty(), "lambda with empty parameter name", e);
        Require(e->a != nullptr, "lambda missing its body", e);
        Check(e->a);
        break;
      case ExprKind::kApply:
        Require(e->a && e->b, "application missing function or argument", e);
        if (in_normal_form_ && e->a && e->a->kind == ExprKind::kLambda) {
          // Normalization performs beta reduction eagerly (the Figure 4
          // rules substitute generator/let bindings), so a surviving
          // (λv. body)(arg) redex means a rule was skipped.
          Finding("Fig4-beta", "beta-redex survived normalization",
                  PrintExpr(e));
        }
        Check(e->a);
        Check(e->b);
        break;
      case ExprKind::kComp: {
        Require(e->a != nullptr, "comprehension missing its head", e);
        for (const Qualifier& q : e->quals) {
          if (q.is_generator) {
            Require(!q.var.empty(), "generator with empty variable", e);
          } else {
            Require(q.var.empty(), "filter qualifier carries a variable", e);
          }
          Require(q.expr != nullptr, "qualifier missing its expression", e);
          Check(q.expr);
        }
        Check(e->a);
        break;
      }
    }
  }

  void set_in_normal_form(bool v) { in_normal_form_ = v; }

 private:
  void Count() { ++report_->checks; }

  void Require(bool cond, const std::string& detail, const ExprPtr& at) {
    Count();
    if (!cond) Finding("well-formed", detail, PrintExpr(at));
  }

  void Finding(const std::string& rule, const std::string& detail,
               const std::string& subtree) {
    report_->findings.push_back({report_->stage, rule, detail, subtree});
  }

  VerifyReport* report_;
  bool in_normal_form_ = false;
};

}  // namespace

VerifyReport VerifyCalculus(const ExprPtr& e, const Schema& schema,
                            CalculusStage stage,
                            const std::string& stage_label) {
  auto t0 = std::chrono::steady_clock::now();
  VerifyReport report;
  report.stage = !stage_label.empty()
                     ? stage_label
                     : (stage == CalculusStage::kNormalized
                            ? "calculus-normalized"
                            : "calculus-input");

  CalculusChecker checker(&report);
  checker.set_in_normal_form(stage == CalculusStage::kNormalized);
  checker.Check(e);

  if (e && report.ok()) {
    // Scope discipline: parameters are kParam nodes and generators/lambdas
    // bind their variables, so the only names allowed free are declared
    // extents. Anything else would read an unbound variable at runtime.
    for (const std::string& v : FreeVars(e)) {
      ++report.checks;
      if (!schema.IsExtent(v)) {
        report.findings.push_back(
            {report.stage, "scope",
             "free variable '" + v + "' is not a declared extent",
             PrintExpr(e)});
      }
    }

    // Figure 3 typing.
    ++report.checks;
    try {
      TypeCheck(e, schema);
    } catch (const TypeError& err) {
      report.findings.push_back(
          {report.stage, "Fig3-typing", err.what(), PrintExpr(e)});
    }

    if (stage == CalculusStage::kNormalized && report.ok()) {
      // Figure 4 normal form, checked exactly: the term must be a fixpoint
      // of the normalizer. A purely structural redex scan would misfire on
      // the idempotence side conditions of (N6)-(N8) — rules that legally
      // leave comprehension-shaped subterms in place — so we re-run the
      // rules instead; when nothing fires the result is structurally
      // identical (and no fresh names are drawn).
      ++report.checks;
      ExprPtr again = Normalize(e);
      if (!ExprEqual(again, e)) {
        report.findings.push_back(
            {report.stage, "Fig4-fixpoint",
             "a Figure 4 rule still applies; normalizing again yields: " +
                 PrintExpr(again),
             PrintExpr(e)});
      }
    }
  }

  auto t1 = std::chrono::steady_clock::now();
  report.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return report;
}

}  // namespace ldb
