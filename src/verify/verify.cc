#include "src/verify/verify.h"

#include <sstream>

namespace ldb {

std::string VerifyFinding::ToString() const {
  std::ostringstream os;
  os << "[" << stage << "/" << rule << "] " << detail;
  if (!subtree.empty()) os << "\n  in: " << subtree;
  return os.str();
}

std::string VerifyReport::ToString() const {
  std::ostringstream os;
  os << stage << ": " << checks << " checks, " << findings.size()
     << (findings.size() == 1 ? " finding" : " findings");
  for (const VerifyFinding& f : findings) {
    os << "\n  " << f.ToString();
  }
  return os.str();
}

void VerifyReport::ThrowIfFailed() const {
  if (!findings.empty()) throw VerifyError(findings.front(), findings.size());
}

namespace {

std::string FormatError(const VerifyFinding& first, size_t n_findings) {
  std::ostringstream os;
  os << "verify failed at " << first.stage << " (rule " << first.rule
     << "): " << first.detail;
  if (!first.subtree.empty()) os << "\n  in: " << first.subtree;
  if (n_findings > 1) os << "\n  (+" << (n_findings - 1) << " more findings)";
  return os.str();
}

}  // namespace

VerifyError::VerifyError(const VerifyFinding& first, size_t n_findings)
    : Error(FormatError(first, n_findings)),
      stage_(first.stage),
      rule_(first.rule) {}

std::vector<VerifyReport> VerifyCompiledQuery(const CompiledQuery& q,
                                              const Schema& schema,
                                              bool expect_normal_form) {
  std::vector<VerifyReport> out;
  out.push_back(VerifyCalculus(q.calculus, schema, CalculusStage::kInput));
  if (q.normalized) {
    out.push_back(VerifyCalculus(q.normalized, schema,
                                 expect_normal_form ? CalculusStage::kNormalized
                                                    : CalculusStage::kInput,
                                 "calculus-normalized"));
  }
  out.push_back(VerifyAlgebra(q.plan, schema, "algebra-unnested"));
  if (q.simplified != q.plan) {
    out.push_back(VerifyAlgebra(q.simplified, schema, "algebra-simplified"));
  }
  return out;
}

void ThrowOnFindings(const std::vector<VerifyReport>& reports) {
  for (const VerifyReport& r : reports) r.ThrowIfFailed();
}

void RecordVerifyStage(CompileTrace* trace, const VerifyReport& report) {
  if (!trace) return;
  trace->verify_stages.push_back({report.stage, report.checks,
                                  static_cast<int>(report.findings.size()),
                                  report.ms});
}

}  // namespace ldb
