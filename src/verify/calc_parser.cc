#include "src/verify/calc_parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <vector>

#include "src/runtime/error.h"

namespace ldb {

namespace {

// Character-level recursive descent over the PrintExpr grammar. The printer
// is whitespace-disciplined — binary operators always have spaces around
// them, unary operators and applications abut their '(' — and the parser
// relies on that to disambiguate '-' (negative literal vs. negation vs.
// subtraction) and '(' (grouping vs. application vs. the (+) merge symbol).
class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  ExprPtr Parse() {
    ExprPtr e = ParseExpr();
    Skip();
    if (p_ != s_.size()) Fail("trailing input");
    return e;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw ParseError("calculus syntax: " + why + " at offset " +
                     std::to_string(p_) + " in: " + s_);
  }

  void Skip() {
    while (p_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[p_]))) {
      ++p_;
    }
  }

  char Peek() const { return p_ < s_.size() ? s_[p_] : '\0'; }
  char At(size_t off) const {
    return p_ + off < s_.size() ? s_[p_ + off] : '\0';
  }

  void Expect(char c) {
    Skip();
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++p_;
  }

  bool Accept(char c) {
    Skip();
    if (Peek() != c) return false;
    ++p_;
    return true;
  }

  static bool IdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IdentChar(char c) {
    // Gensym names contain '$' ("v$17"); it cannot open an identifier
    // (that position means a parameter).
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
  }

  std::string ParseIdent() {
    Skip();
    if (!IdentStart(Peek())) Fail("expected identifier");
    size_t start = p_;
    while (IdentChar(Peek())) ++p_;
    return s_.substr(start, p_ - start);
  }

  // Peeks the identifier at the cursor without consuming it.
  std::string PeekIdent() {
    Skip();
    if (!IdentStart(Peek())) return "";
    size_t q = p_;
    while (q < s_.size() && IdentChar(s_[q])) ++q;
    return s_.substr(p_, q - p_);
  }

  static std::optional<MonoidKind> MonoidByName(const std::string& n) {
    if (n == "set") return MonoidKind::kSet;
    if (n == "bag") return MonoidKind::kBag;
    if (n == "list") return MonoidKind::kList;
    if (n == "sum") return MonoidKind::kSum;
    if (n == "prod") return MonoidKind::kProd;
    if (n == "max") return MonoidKind::kMax;
    if (n == "min") return MonoidKind::kMin;
    if (n == "some") return MonoidKind::kSome;
    if (n == "all") return MonoidKind::kAll;
    if (n == "avg") return MonoidKind::kAvg;
    return std::nullopt;
  }

  // -- values (Value::ToString grammar) ------------------------------------

  Value ParseNumberValue() {
    Skip();
    size_t start = p_;
    if (Peek() == '-') ++p_;
    bool real = false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++p_;
    if (Peek() == '.') {
      real = true;
      ++p_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++p_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      real = true;
      ++p_;
      if (Peek() == '+' || Peek() == '-') ++p_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++p_;
    }
    if (p_ == start || (s_[start] == '-' && p_ == start + 1)) {
      Fail("expected number");
    }
    std::string text = s_.substr(start, p_ - start);
    if (real) return Value::Real(std::strtod(text.c_str(), nullptr));
    return Value::Int(std::strtoll(text.c_str(), nullptr, 10));
  }

  std::string ParseStringBody() {
    // ToString does not escape; the body runs to the next quote.
    Expect('"');
    size_t start = p_;
    while (p_ < s_.size() && s_[p_] != '"') ++p_;
    if (p_ == s_.size()) Fail("unterminated string");
    std::string out = s_.substr(start, p_ - start);
    ++p_;
    return out;
  }

  Elems ParseValueElems(char close1, char close2 = '\0') {
    Elems elems;
    Skip();
    while (true) {
      Skip();
      if (Peek() == close1 || (close2 && Peek() == close2)) break;
      if (!elems.empty()) {
        Expect(',');
      }
      Skip();
      if (Peek() == close1 || (close2 && Peek() == close2)) break;
      elems.push_back(ParseValue());
    }
    return elems;
  }

  Value ParseValue() {
    Skip();
    char c = Peek();
    if (c == '"') return Value::Str(ParseStringBody());
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumberValue();
    }
    if (c == '<') {
      ++p_;
      Fields fields;
      Skip();
      while (Peek() != '>') {
        if (!fields.empty()) Expect(',');
        std::string name = ParseIdent();
        Expect('=');
        fields.emplace_back(name, ParseValue());
        Skip();
      }
      ++p_;
      return Value::Tuple(std::move(fields));
    }
    if (c == '{') {
      if (At(1) == '|') {
        p_ += 2;
        Elems e = ParseValueElems('|');
        Expect('|');
        Expect('}');
        return Value::Bag(std::move(e));
      }
      ++p_;
      Elems e = ParseValueElems('}');
      Expect('}');
      return Value::Set(std::move(e));
    }
    if (c == '[') {
      ++p_;
      Elems e = ParseValueElems(']');
      Expect(']');
      return Value::List(std::move(e));
    }
    std::string word = ParseIdent();
    if (word == "NULL") return Value::Null();
    if (word == "true") return Value::Bool(true);
    if (word == "false") return Value::Bool(false);
    if (Peek() == '#') {
      ++p_;
      Value oid = ParseNumberValue();
      return Value::MakeRef(word, oid.AsInt());
    }
    Fail("expected value, got '" + word + "'");
  }

  // -- expressions ---------------------------------------------------------

  std::optional<BinOpKind> ParseBinOp() {
    Skip();
    // Longest match first among the symbolic operators.
    auto take = [&](const char* t, BinOpKind k) -> std::optional<BinOpKind> {
      size_t n = std::char_traits<char>::length(t);
      if (s_.compare(p_, n, t) != 0) return std::nullopt;
      if (IdentStart(t[0]) && IdentChar(At(n))) return std::nullopt;
      p_ += n;
      return k;
    };
    if (auto k = take("!=", BinOpKind::kNe)) return k;
    if (auto k = take("<=", BinOpKind::kLe)) return k;
    if (auto k = take(">=", BinOpKind::kGe)) return k;
    if (auto k = take("<", BinOpKind::kLt)) return k;
    if (auto k = take(">", BinOpKind::kGt)) return k;
    if (auto k = take("=", BinOpKind::kEq)) return k;
    if (auto k = take("and", BinOpKind::kAnd)) return k;
    if (auto k = take("or", BinOpKind::kOr)) return k;
    if (auto k = take("mod", BinOpKind::kMod)) return k;
    if (auto k = take("+", BinOpKind::kAdd)) return k;
    if (auto k = take("-", BinOpKind::kSub)) return k;
    if (auto k = take("*", BinOpKind::kMul)) return k;
    if (auto k = take("/", BinOpKind::kDiv)) return k;
    return std::nullopt;
  }

  // '(' already consumed: either a binary operation, a merge, or (not
  // emitted by the printer, but harmless) a parenthesized group.
  ExprPtr ParseParenTail() {
    ExprPtr lhs = ParseExpr();
    Skip();
    if (Accept(')')) return lhs;
    if (Peek() == '(' && At(1) == '+' && At(2) == ')') {
      p_ += 3;
      std::string name = ParseIdent();
      auto m = MonoidByName(name);
      if (!m) Fail("unknown merge monoid '" + name + "'");
      ExprPtr rhs = ParseExpr();
      Expect(')');
      return Expr::Merge(*m, lhs, rhs);
    }
    std::optional<BinOpKind> op = ParseBinOp();
    if (!op) Fail("expected operator or ')'");
    ExprPtr rhs = ParseExpr();
    Expect(')');
    return Expr::Bin(*op, lhs, rhs);
  }

  std::vector<Qualifier> ParseQualifiers() {
    std::vector<Qualifier> quals;
    while (true) {
      Skip();
      // Generator lookahead: `ident <-` (the arrow distinguishes it from a
      // filter that happens to start with a variable).
      size_t save = p_;
      bool generator = false;
      std::string var;
      if (IdentStart(Peek())) {
        var = ParseIdent();
        Skip();
        if (Peek() == '<' && At(1) == '-') {
          p_ += 2;
          generator = true;
        } else {
          p_ = save;
        }
      }
      if (generator) {
        quals.push_back(Qualifier::Generator(var, ParseExpr()));
      } else {
        quals.push_back(Qualifier::Filter(ParseExpr()));
      }
      Skip();
      if (!Accept(',')) break;
    }
    return quals;
  }

  ExprPtr ParseComp(MonoidKind m) {
    Expect('{');
    ExprPtr head = ParseExpr();
    std::vector<Qualifier> quals;
    Skip();
    if (Accept('|')) quals = ParseQualifiers();
    Expect('}');
    return Expr::Comp(m, head, std::move(quals));
  }

  ExprPtr ParsePrimary() {
    Skip();
    char c = Peek();
    if (c == '(') {
      ++p_;
      return ParseParenTail();
    }
    if (c == '\\') {
      ++p_;
      std::string var = ParseIdent();
      Expect('.');
      return Expr::Lambda(var, ParseExpr());
    }
    if (c == '$') {
      ++p_;
      return Expr::Param(ParseIdent());
    }
    if (c == '<') {
      ++p_;
      std::vector<std::pair<std::string, ExprPtr>> fields;
      Skip();
      while (Peek() != '>') {
        if (!fields.empty()) Expect(',');
        std::string name = ParseIdent();
        Expect('=');
        fields.emplace_back(name, ParseExpr());
        Skip();
      }
      ++p_;
      return Expr::Record(std::move(fields));
    }
    if (c == '{' || c == '[' || c == '"') return Expr::Lit(ParseValue());
    if (c == '-') {
      if (At(1) == '(') {
        p_ += 2;
        ExprPtr e = ParseExpr();
        Expect(')');
        return Expr::Un(UnOpKind::kNeg, e);
      }
      return Expr::Lit(ParseNumberValue());
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return Expr::Lit(ParseNumberValue());
    }
    if (!IdentStart(c)) Fail("expected expression");

    std::string word = ParseIdent();
    if (word == "if") {
      ExprPtr cond = ParseExpr();
      std::string kw = ParseIdent();
      if (kw != "then") Fail("expected 'then'");
      ExprPtr then_e = ParseExpr();
      kw = ParseIdent();
      if (kw != "else") Fail("expected 'else'");
      return Expr::If(cond, then_e, ParseExpr());
    }
    if ((word == "not" || word == "is_null") && Peek() == '(') {
      ++p_;
      ExprPtr e = ParseExpr();
      Expect(')');
      return Expr::Un(word == "not" ? UnOpKind::kNot : UnOpKind::kIsNull, e);
    }
    if (word == "zero" && Peek() == '[') {
      ++p_;
      std::string name = ParseIdent();
      auto m = MonoidByName(name);
      if (!m) Fail("unknown monoid '" + name + "'");
      Expect(']');
      return Expr::Zero(*m);
    }
    if (auto m = MonoidByName(word); m && Peek() == '{') {
      return ParseComp(*m);
    }
    if (word == "NULL") return Expr::Null();
    if (word == "true") return Expr::True();
    if (word == "false") return Expr::False();
    if (Peek() == '#') {
      ++p_;
      Value oid = ParseNumberValue();
      return Expr::Lit(Value::MakeRef(word, oid.AsInt()));
    }
    return Expr::Var(word);
  }

  ExprPtr ParseExpr() {
    ExprPtr e = ParsePrimary();
    // Postfix: projections and applications abut their base (no space).
    while (true) {
      if (Peek() == '.' && IdentStart(At(1))) {
        ++p_;
        e = Expr::Proj(e, ParseIdent());
        continue;
      }
      if (Peek() == '(') {
        ++p_;
        ExprPtr arg = ParseExpr();
        Expect(')');
        e = Expr::Apply(e, arg);
        continue;
      }
      return e;
    }
  }

  const std::string& s_;
  size_t p_ = 0;
};

}  // namespace

ExprPtr ParseCalculus(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace ldb
