// Slot-plan dataflow verification. See verify.h and docs/VERIFIER.md.
//
// The analysis mirrors the scoping rules of CompileSlotPlan exactly: it
// recomputes, per operator, the set of slots the executor guarantees to have
// written before the operator's expressions run (the "available" set), the
// set of slots that may legitimately hold NULL padding, and checks every
// compiled expression against them. Because morsel workers execute against
// private frames, the concurrency invariant ("no two concurrent pipelines
// write the same non-accumulator slot") reduces to a static single-writer
// property of the shared plan: no two operators may claim the same slot.

#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "src/verify/verify.h"

namespace ldb {

namespace {

std::string SlotOpLabel(const SlotOp& op) {
  std::ostringstream os;
  os << PhysKindName(op.kind) << "#" << op.id << " span[" << op.out_lo << ","
     << op.out_hi << ")";
  return os.str();
}

class SlotChecker {
 public:
  SlotChecker(const SlotPlan& plan, VerifyReport* report)
      : plan_(plan), report_(report) {}

  void Run() {
    if (!plan_.root) {
      Finding("arity", "slot plan has no root", "");
      return;
    }
    Require(plan_.root->kind == PhysKind::kReduce, "root-reduce",
            "slot plan root is not a reduce", *plan_.root);
    CollectWriters(plan_.root);
    CheckParams();
    Flow f = CheckOp(plan_.root, /*is_root=*/true);
    (void)f;
  }

 private:
  // Available (guaranteed-written) and possibly-NULL (padding) slots of an
  // operator's output stream, plus the slots bound by the stream's leftmost
  // scan (the branch seed): the unnester null-converts every inner-box
  // generator, and an uncorrelated box's first generator is introduced by a
  // plain seed scan — never NULL, but a legitimate null-slot.
  struct Flow {
    std::set<int> avail;
    std::set<int> pads;
    std::set<int> seeds;
  };

  // -- pass 1: writer collection -------------------------------------------

  void Claim(int slot, const SlotOp& op, const char* what) {
    Require(slot >= 0 && slot < plan_.n_slots, "slot-range",
            std::string(what) + " slot " + std::to_string(slot) +
                " outside frame of " + std::to_string(plan_.n_slots),
            op);
    auto [it, inserted] = writers_.emplace(slot, op.id);
    ++report_->checks;
    if (!inserted) {
      Finding("single-writer",
              std::string(what) + " slot " + std::to_string(slot) +
                  " already written by operator #" + std::to_string(it->second),
              SlotOpLabel(op));
    }
  }

  void CollectWriters(const SlotOpPtr& op) {
    if (!op) return;
    switch (op->kind) {
      case PhysKind::kTableScan:
      case PhysKind::kIndexScan:
      case PhysKind::kUnnest:
      case PhysKind::kOuterUnnest:
        Claim(op->var_slot, *op, "binding");
        break;
      case PhysKind::kHashNest:
        for (const auto& [slot, key] : op->group_slots) {
          (void)key;
          Claim(slot, *op, "group");
        }
        Claim(op->var_slot, *op, "binding");
        break;
      default:
        break;
    }
    CollectWriters(op->left);
    CollectWriters(op->right);
  }

  void CheckParams() {
    std::set<std::string> names;
    for (const auto& [name, slot] : plan_.param_slots) {
      Require(names.insert(name).second, "param-init",
              "parameter '" + name + "' reserved twice", *plan_.root);
      Require(slot >= 0 && slot < plan_.n_slots, "slot-range",
              "parameter slot " + std::to_string(slot) + " outside frame",
              *plan_.root);
      // Parameter slots are written once, before any row flows; an operator
      // claiming the same slot would clobber the binding mid-query.
      ++report_->checks;
      if (writers_.count(slot)) {
        Finding("param-init",
                "parameter '" + name + "' shares slot " +
                    std::to_string(slot) + " with operator #" +
                    std::to_string(writers_.at(slot)),
                SlotOpLabel(*plan_.root));
      }
      params_.insert(slot);
    }
  }

  // -- pass 2: dataflow ----------------------------------------------------

  Flow CheckOp(const SlotOpPtr& op, bool is_root) {
    if (!op) {
      Finding("arity", "null slot operator", "");
      return {};
    }
    // The pre-order id numbering is load-bearing: the profiler and EXPLAIN
    // ANALYZE match operators to stats by reproducing this walk.
    Require(op->id == next_pre_id_++, "preorder-id",
            "operator id " + std::to_string(op->id) +
                " breaks the pre-order numbering",
            *op);
    Require(op->out_lo <= op->out_hi && op->out_lo >= 0 &&
                op->out_hi <= plan_.n_slots,
            "span", "malformed covering span", *op);
    Require(op->kind == PhysKind::kReduce ? is_root : true, "root-reduce",
            "reduce operator below the slot-plan root", *op);

    Flow out;
    switch (op->kind) {
      case PhysKind::kUnitRow:
        break;
      case PhysKind::kTableScan: {
        BindCheck(*op);
        out.avail.insert(op->var_slot);
        out.seeds.insert(op->var_slot);
        CheckExpr(op->pred, out, *op, "predicate");
        break;
      }
      case PhysKind::kIndexScan: {
        BindCheck(*op);
        // The index iterator is opened before any row flows, so its key may
        // read only parameter slots and constants.
        CheckExpr(op->index_key, Flow{}, *op, "index key");
        out.avail.insert(op->var_slot);
        out.seeds.insert(op->var_slot);
        CheckExpr(op->pred, out, *op, "predicate");
        break;
      }
      case PhysKind::kFilter: {
        out = CheckOp(op->left, false);
        SpanContains(*op, out);
        CheckExpr(op->pred, out, *op, "predicate");
        break;
      }
      case PhysKind::kUnnest:
      case PhysKind::kOuterUnnest: {
        out = CheckOp(op->left, false);
        SpanContains(*op, out);
        CheckExpr(op->path, out, *op, "path");  // before the variable binds
        BindCheck(*op);
        out.avail.insert(op->var_slot);
        if (op->kind == PhysKind::kOuterUnnest) {
          out.pads.insert(op->var_slot);  // empty collections pad with NULL
        }
        CheckExpr(op->pred, out, *op, "predicate");
        break;
      }
      case PhysKind::kNLJoin:
      case PhysKind::kNLOuterJoin:
      case PhysKind::kHashJoin:
      case PhysKind::kHashOuterJoin: {
        Flow l = CheckOp(op->left, false);
        Flow r = CheckOp(op->right, false);
        out.avail = l.avail;
        out.avail.insert(r.avail.begin(), r.avail.end());
        out.pads = l.pads;
        out.pads.insert(r.pads.begin(), r.pads.end());
        // The combined stream's seed stays the leftmost one; right-side vars
        // were joined in, not seeded.
        out.seeds = l.seeds;
        SpanContains(*op, out);
        const bool outer = op->kind == PhysKind::kNLOuterJoin ||
                           op->kind == PhysKind::kHashOuterJoin;
        if (outer && op->right) {
          // A failed match NULL-fills the right subtree's whole covering
          // span (a range fill, which is why spans must nest).
          for (int s = op->right->out_lo; s < op->right->out_hi; ++s) {
            out.pads.insert(s);
          }
        }
        const Flow& build = op->build_is_left ? l : r;
        const Flow& probe = op->build_is_left ? r : l;
        for (const CExprPtr& k : op->build_keys) {
          CheckExpr(k, build, *op, "build key");
        }
        for (const CExprPtr& k : op->probe_keys) {
          CheckExpr(k, probe, *op, "probe key");
        }
        CheckExpr(op->pred, out, *op, "predicate");
        break;
      }
      case PhysKind::kHashNest: {
        Flow child = CheckOp(op->left, false);
        // The nest's output slots live after its child's (the child scope is
        // dead above the nest — its slots are never read again, only copied
        // or NULL-filled as part of an enclosing span).
        if (op->left) {
          Require(op->out_lo >= op->left->out_hi, "span",
                  "nest output span overlaps its child's slots", *op);
        }
        for (const auto& [slot, key] : op->group_slots) {
          CheckExpr(key, child, *op, "group-by key");
          out.avail.insert(slot);
          // A group key that is a plain read of a padding slot carries the
          // padded NULL through as a group key (and a seed slot its
          // seed-ness); anything computed is treated as non-NULL.
          if (key && key->kind == CExprKind::kSlot) {
            if (child.pads.count(key->slot) > 0) out.pads.insert(slot);
            if (child.seeds.count(key->slot) > 0) out.seeds.insert(slot);
          }
        }
        // O7: the null→zero conversion may only target genuine padding
        // slots — or the branch's seed slot, which the unnester lists for
        // an uncorrelated box although it can never be NULL (vacuous
        // conversion). Anything else means the compiled g function
        // disagrees with the plan that introduced the padding.
        for (int s : op->null_slots) {
          Require(child.pads.count(s) > 0 || child.seeds.count(s) > 0,
                  "O7-null-zero",
                  "null-slot " + std::to_string(s) +
                      " is neither a padding slot nor the seed slot of the "
                      "nest input",
                  *op);
        }
        CheckExpr(op->pred, child, *op, "predicate");
        CheckExpr(op->head, child, *op, "head");
        BindCheck(*op);
        out.avail.insert(op->var_slot);
        SpanContains(*op, out);
        break;
      }
      case PhysKind::kReduce: {
        out = CheckOp(op->left, false);
        SpanContains(*op, out);
        CheckExpr(op->pred, out, *op, "predicate");
        CheckExpr(op->head, out, *op, "head");
        break;
      }
    }
    ChildSpans(*op);
    return out;
  }

  void BindCheck(const SlotOp& op) {
    Require(op.var_slot >= 0, "arity", "binding operator without a slot", op);
    Require(op.var_slot >= op.out_lo && op.var_slot < op.out_hi, "span",
            "bound slot " + std::to_string(op.var_slot) +
                " outside the operator's covering span",
            op);
  }

  void SpanContains(const SlotOp& op, const Flow& f) {
    for (int s : f.avail) {
      Require(s >= op.out_lo && s < op.out_hi, "span",
              "available slot " + std::to_string(s) +
                  " escapes the covering span",
              op);
    }
  }

  void ChildSpans(const SlotOp& op) {
    // Covering spans nest: each child's span lies inside the parent's —
    // except under HashNest, whose child scope is replaced (checked above).
    if (op.kind == PhysKind::kHashNest) return;
    for (const SlotOpPtr& child : {op.left, op.right}) {
      if (!child) continue;
      Require(child->out_lo >= op.out_lo && child->out_hi <= op.out_hi,
              "span", "child span escapes the parent's covering span", op);
    }
  }

  void CheckExpr(const CExprPtr& e, const Flow& flow, const SlotOp& op,
                 const char* what) {
    std::set<int> lets;
    CheckExprRec(e, flow, &lets, op, what);
  }

  void CheckExprRec(const CExprPtr& e, const Flow& flow, std::set<int>* lets,
                    const SlotOp& op, const char* what) {
    if (!e) {
      // Predicates are never null by construction (compiled True()); paths,
      // heads and keys only exist on operators that use them.
      if (std::string(what) == "predicate") {
        Finding("arity", "operator missing compiled predicate",
                SlotOpLabel(op));
      }
      return;
    }
    switch (e->kind) {
      case CExprKind::kSlot:
        ++report_->checks;
        if (flow.avail.count(e->slot) == 0 && params_.count(e->slot) == 0 &&
            lets->count(e->slot) == 0) {
          Finding("read-before-write",
                  std::string(what) + " reads slot " +
                      std::to_string(e->slot) +
                      " before any operator writes it",
                  SlotOpLabel(op));
        }
        break;
      case CExprKind::kLit:
        break;
      case CExprKind::kRecord:
        for (const auto& [name, f] : e->fields) {
          (void)name;
          CheckExprRec(f, flow, lets, op, what);
        }
        break;
      case CExprKind::kProj:
      case CExprKind::kUnOp:
        CheckExprRec(e->a, flow, lets, op, what);
        break;
      case CExprKind::kIf:
        CheckExprRec(e->a, flow, lets, op, what);
        CheckExprRec(e->b, flow, lets, op, what);
        CheckExprRec(e->c, flow, lets, op, what);
        break;
      case CExprKind::kBinOp:
      case CExprKind::kMerge:
        CheckExprRec(e->a, flow, lets, op, what);
        CheckExprRec(e->b, flow, lets, op, what);
        break;
      case CExprKind::kLet: {
        // The scratch target must be a dedicated slot: not an operator's,
        // not a parameter's, not another let's (scratch slots are assigned
        // fresh per compiled application site).
        Require(e->slot >= 0 && e->slot < plan_.n_slots, "slot-range",
                "let scratch slot " + std::to_string(e->slot) +
                    " outside frame",
                op);
        ++report_->checks;
        if (writers_.count(e->slot) || params_.count(e->slot) ||
            !let_slots_.insert(e->slot).second) {
          Finding("single-writer",
                  "let scratch slot " + std::to_string(e->slot) +
                      " is not exclusively owned",
                  SlotOpLabel(op));
        }
        CheckExprRec(e->a, flow, lets, op, what);
        lets->insert(e->slot);
        CheckExprRec(e->b, flow, lets, op, what);
        lets->erase(e->slot);
        break;
      }
      case CExprKind::kFallback:
        // The fallback rebuilds an Env by reading the listed slots, so each
        // must be available like any direct read.
        for (const auto& [name, slot] : e->scope) {
          ++report_->checks;
          if (flow.avail.count(slot) == 0 && params_.count(slot) == 0 &&
              lets->count(slot) == 0) {
            Finding("read-before-write",
                    std::string(what) + " fallback reads slot " +
                        std::to_string(slot) + " ('" + name +
                        "') before any operator writes it",
                    SlotOpLabel(op));
          }
        }
        break;
    }
  }

  void Require(bool cond, const std::string& rule, const std::string& detail,
               const SlotOp& at) {
    ++report_->checks;
    if (!cond) Finding(rule, detail, SlotOpLabel(at));
  }

  void Finding(const std::string& rule, const std::string& detail,
               const std::string& subtree) {
    report_->findings.push_back({report_->stage, rule, detail, subtree});
  }

  const SlotPlan& plan_;
  VerifyReport* report_;
  std::map<int, int> writers_;  ///< operator-claimed slot -> operator id
  std::set<int> params_;
  std::set<int> let_slots_;
  int next_pre_id_ = 0;
};

}  // namespace

VerifyReport VerifySlotPlan(const SlotPlan& plan) {
  auto t0 = std::chrono::steady_clock::now();
  VerifyReport report;
  report.stage = "slot-plan";
  SlotChecker(plan, &report).Run();
  auto t1 = std::chrono::steady_clock::now();
  report.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return report;
}

}  // namespace ldb
