// LRU cache of compiled query plans (docs/SERVICE.md).
//
// The key is the pretty-printed *normalized* calculus plus a version stamp
// covering the schema, catalog statistics, and plan-shaping optimizer flags.
// Normalization is strongly normalizing and confluent on this fragment, so
// the normal form is a canonical representative of the query: two query
// texts that normalize to the same term are the same query and can share a
// plan. Parameters ($1 / $name) survive normalization as opaque leaves and
// print as `$name`, so one cached plan serves every binding.
//
// Cached plans are immutable and handed out as shared_ptr<const ...>: an
// eviction never invalidates a plan that a concurrent execution still
// holds. All counters are cache-wide totals, surfaced through the profiler
// JSON (plan_cached / cache_hits / cache_misses / cache_evictions) and
// `EXPLAIN ANALYZE`.

#ifndef LAMBDADB_SERVICE_PLAN_CACHE_H_
#define LAMBDADB_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/optimizer.h"
#include "src/core/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/runtime/physical_plan.h"
#include "src/runtime/slot_plan.h"

namespace ldb {

/// A fully compiled, engine-ready query. Built once per distinct normalized
/// form and shared read-only by every execution (both engines, any number
/// of concurrent sessions).
struct PreparedPlan {
  std::string cache_key;      ///< the key this plan is stored under
  CompiledQuery compiled;     ///< calculus .. simplified algebra
  PhysPtr physical;           ///< physical plan (Env engine entry point)
  SlotPlan slots;             ///< slot-compiled plan (slot engine entry point)
  bool ordered = false;       ///< top-level `order by`: sort after execution
  std::vector<bool> descending;

  /// Top level is not a comprehension (e.g. a record of aggregates): the
  /// physical/slot fields are unset and execution routes through
  /// Optimizer::Run on `compiled.calculus`.
  bool fallback_run = false;
};

/// Point-in-time cache counters. `evictions` is the lifetime total;
/// the two `evictions_*` fields split it by reason so metrics can tell LRU
/// pressure (capacity) apart from plans dropped because the schema/catalog/
/// flags version stamp moved on (invalidated — includes Clear()).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;  ///< evictions_capacity + evictions_invalidated
  uint64_t evictions_capacity = 0;
  uint64_t evictions_invalidated = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// Thread-safe LRU map from cache key to PreparedPlan.
class PlanCache {
 public:
  /// Optional metric instruments updated at event time (in addition to the
  /// internal counters, which exist regardless). All pointers may be null.
  struct MetricHooks {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions_capacity = nullptr;
    obs::Counter* evictions_invalidated = nullptr;
    obs::Gauge* entries = nullptr;
  };

  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Installs metric instruments. Takes the cache mutex, so installing late
  /// (after concurrent use began) is merely pointless, not a data race.
  void SetMetricHooks(MetricHooks hooks) LDB_EXCLUDES(mu_);

  /// Returns the cached plan and counts a hit (moving the entry to the
  /// front), or nullptr and counts a miss.
  std::shared_ptr<const PreparedPlan> Lookup(const std::string& key)
      LDB_EXCLUDES(mu_);

  /// Inserts a freshly compiled plan, evicting the least-recently-used
  /// entry when over capacity. Inserting an existing key refreshes it.
  void Insert(const std::string& key, std::shared_ptr<const PreparedPlan> plan)
      LDB_EXCLUDES(mu_);

  /// Drops every entry (counters are kept — they are lifetime totals).
  /// Dropped entries count as invalidation evictions.
  void Clear() LDB_EXCLUDES(mu_);

  /// Drops every entry whose key does not contain `stamp_fragment` (the
  /// "\n@<version-stamp>" suffix the service builds into each key). Used
  /// when the catalog/schema changes: surviving entries were compiled under
  /// the current stamp. Returns the number of entries dropped; each counts
  /// as an invalidation eviction.
  size_t EvictNotMatching(const std::string& stamp_fragment)
      LDB_EXCLUDES(mu_);

  PlanCacheStats Stats() const LDB_EXCLUDES(mu_);

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const PreparedPlan>>>;

  mutable Mutex mu_;
  MetricHooks hooks_ LDB_GUARDED_BY(mu_);
  const size_t capacity_;  ///< immutable after construction
  LruList lru_ LDB_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> by_key_
      LDB_GUARDED_BY(mu_);
  uint64_t hits_ LDB_GUARDED_BY(mu_) = 0;
  uint64_t misses_ LDB_GUARDED_BY(mu_) = 0;
  uint64_t evictions_capacity_ LDB_GUARDED_BY(mu_) = 0;
  uint64_t evictions_invalidated_ LDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ldb

#endif  // LAMBDADB_SERVICE_PLAN_CACHE_H_
