// QueryService: a concurrent query front end over one shared immutable
// Database (docs/SERVICE.md).
//
// The service owns the three serving concerns the compiler and executors
// deliberately do not:
//
//   * a parameterized plan cache — queries are compiled once per distinct
//     normalized calculus form and the compiled plan (physical + slot) is
//     reused across bindings and sessions;
//   * sessions — per-client bindings, deadline, memory budget, and the
//     CancelToken both engines poll;
//   * admission — at most `max_concurrent` queries execute at once; up to
//     `max_queue` more wait on a condition variable (deadline-aware), and
//     anything beyond that is rejected with AdmissionError.
//
// The Database is shared read-only: every execution builds its own iterator
// tree / frames, so any number of sessions may run against it concurrently.

#ifndef LAMBDADB_SERVICE_QUERY_SERVICE_H_
#define LAMBDADB_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/optimizer.h"
#include "src/runtime/database.h"
#include "src/runtime/error.h"
#include "src/runtime/profile.h"
#include "src/service/plan_cache.h"
#include "src/service/session.h"

namespace ldb {

/// Raised when a query cannot even be queued: `max_concurrent` queries are
/// running and `max_queue` more are already waiting.
class AdmissionError : public Error {
 public:
  explicit AdmissionError(const std::string& msg)
      : Error("admission rejected: " + msg) {}
};

struct ServiceOptions {
  /// Queries executing at once; further arrivals wait.
  int max_concurrent = 4;
  /// Waiters allowed beyond the running set; further arrivals get
  /// AdmissionError immediately.
  size_t max_queue = 16;
  /// Plan-cache capacity in entries (LRU beyond that).
  size_t plan_cache_capacity = 64;
  /// Compile-side knobs (normalize/simplify/physical selection/catalog).
  /// The exec member is ignored — execution knobs come from each session.
  OptimizerOptions optimizer;
};

/// Per-query service-level timings and cache outcome. Complements the
/// per-operator QueryProfiler (which the service also fills with the cache
/// counters, so they reach the profile JSON and EXPLAIN ANALYZE).
struct QueryStats {
  bool plan_cached = false;  ///< plan came from the cache (no compile)
  double queue_ms = 0;       ///< time spent waiting for admission
  double compile_ms = 0;     ///< parse + key build (+ compile on a miss)
  double exec_ms = 0;        ///< execution proper (incl. ordered-sort)
  PlanCacheStats cache;      ///< cache-wide counters after this query
};

class QueryService {
 public:
  explicit QueryService(const Database& db, ServiceOptions options = {});

  /// Loads a database dump and rebuilds every index declared in it, so
  /// index-backed access paths survive a dump/load round trip (plain
  /// LoadDatabase only records the declarations).
  static Database LoadWithIndexes(std::istream& in);

  /// Creates an execution context. Sessions are independent; one session
  /// runs one query at a time (calls on the same session must not overlap,
  /// except Cancel(), which is safe from any thread).
  std::shared_ptr<Session> OpenSession(SessionOptions options = {});

  /// Registers `oql` under `name` for ExecutePrepared. Parses eagerly (so
  /// syntax errors surface here); compilation happens on first execution
  /// and is shared through the plan cache. Re-preparing a name replaces it.
  void Prepare(const std::string& name, const std::string& oql);
  bool HasPrepared(const std::string& name) const;

  /// Executes a previously Prepare()d statement with the session's current
  /// bindings. Throws EvalError for an unknown name.
  Value ExecutePrepared(Session& session, const std::string& name,
                        QueryStats* stats = nullptr,
                        QueryProfiler* profiler = nullptr);

  /// One-shot: admission -> plan cache (compile on miss) -> execute on the
  /// session's engine with its bindings/deadline/cancel token.
  Value Execute(Session& session, const std::string& oql,
                QueryStats* stats = nullptr,
                QueryProfiler* profiler = nullptr);

  PlanCacheStats cache_stats() const { return cache_.Stats(); }
  void ClearCache() { cache_.Clear(); }

  const Database& db() const { return db_; }
  const ServiceOptions& options() const { return options_; }

  /// Queries currently executing (not queued); for tests and monitoring.
  int running() const;

 private:
  class AdmissionGuard;

  /// Cache lookup by normalized-form key; compiles and inserts on a miss.
  /// Sets *cached to whether the lookup hit.
  std::shared_ptr<const PreparedPlan> GetOrCompile(const std::string& oql,
                                                   bool* cached);

  /// Admission + engine dispatch + ordered-sort + budget check.
  Value Run(Session& session, const std::string& oql, QueryStats* stats,
            QueryProfiler* profiler);

  const Database& db_;
  ServiceOptions options_;
  std::string version_stamp_;  ///< schema/catalog/flags fingerprint
  mutable PlanCache cache_;

  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int running_ = 0;
  size_t waiting_ = 0;

  mutable std::mutex prepared_mu_;
  std::map<std::string, std::string> prepared_;  ///< name -> OQL text
};

}  // namespace ldb

#endif  // LAMBDADB_SERVICE_QUERY_SERVICE_H_
