// QueryService: a concurrent query front end over one shared immutable
// Database (docs/SERVICE.md).
//
// The service owns the serving concerns the compiler and executors
// deliberately do not:
//
//   * a parameterized plan cache — queries are compiled once per distinct
//     normalized calculus form and the compiled plan (physical + slot) is
//     reused across bindings and sessions;
//   * sessions — per-client bindings, deadline, memory budget, and the
//     CancelToken both engines poll;
//   * admission — at most `max_concurrent` queries execute at once; up to
//     `max_queue` more wait on a condition variable (deadline-aware), and
//     anything beyond that is rejected with AdmissionError;
//   * observability — a MetricsRegistry (counters/gauges/histograms over
//     every query the service runs) and a structured query log with
//     slow-query plan/profile capture (src/obs/, docs/OBSERVABILITY.md).
//
// The Database is shared read-only: every execution builds its own iterator
// tree / frames, so any number of sessions may run against it concurrently.

#ifndef LAMBDADB_SERVICE_QUERY_SERVICE_H_
#define LAMBDADB_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <istream>
#include <map>
#include <memory>
#include <string>

#include "src/core/optimizer.h"
#include "src/core/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/resource.h"
#include "src/obs/trace.h"
#include "src/runtime/database.h"
#include "src/runtime/error.h"
#include "src/runtime/profile.h"
#include "src/service/plan_cache.h"
#include "src/service/session.h"

namespace ldb {

/// Raised when a query cannot even be queued: `max_concurrent` queries are
/// running and `max_queue` more are already waiting.
class AdmissionError : public Error {
 public:
  explicit AdmissionError(const std::string& msg)
      : Error("admission rejected: " + msg) {}
};

struct ServiceOptions {
  /// Queries executing at once; further arrivals wait.
  int max_concurrent = 4;
  /// Waiters allowed beyond the running set; further arrivals get
  /// AdmissionError immediately.
  size_t max_queue = 16;
  /// Plan-cache capacity in entries (LRU beyond that).
  size_t plan_cache_capacity = 64;
  /// Compile-side knobs (normalize/simplify/physical selection/catalog).
  /// The exec member is ignored — execution knobs come from each session.
  OptimizerOptions optimizer;
  /// Collect service metrics (no-op when built with -DLDB_METRICS=OFF).
  bool enable_metrics = true;
  /// Query-log ring size (records kept before the oldest is overwritten).
  size_t query_log_capacity = 256;
  /// Queries whose total wall time reaches this threshold additionally log
  /// their rendered plan and profiler snapshot; <= 0 disables slow capture.
  /// The same threshold marks a request trace as "slow" for tail sampling.
  double slow_query_ms = 50;
  /// Completed request traces kept in the tail-sampling ring; 0 disables
  /// the ring (traces are assembled only for exemplar ids then discarded).
  size_t trace_ring_capacity = 64;
  /// Head-sample every Nth submitted trace in addition to the tail policy
  /// (slow / errored / forced always kept); 0 disables head sampling.
  uint32_t trace_head_every = 128;
};

/// Per-query service-level timings and cache outcome. Complements the
/// per-operator QueryProfiler (which the service also fills with the cache
/// counters, so they reach the profile JSON and EXPLAIN ANALYZE).
struct QueryStats {
  bool plan_cached = false;  ///< plan came from the cache (no compile)
  double queue_ms = 0;       ///< time spent waiting for admission
  double compile_ms = 0;     ///< parse + key build (+ compile on a miss)
  double exec_ms = 0;        ///< execution proper (incl. ordered-sort)
  PlanCacheStats cache;      ///< cache-wide counters after this query
  uint64_t trace_id = 0;     ///< trace identity (client-sent or minted)
  uint64_t log_id = 0;       ///< query-log record id (for post-hoc updates)
  double queue_wait_ms = 0;  ///< wire-read -> worker pickup (server fronts)
};

class QueryService {
 public:
  explicit QueryService(const Database& db, ServiceOptions options = {});

  /// Loads a database dump and rebuilds every index declared in it, so
  /// index-backed access paths survive a dump/load round trip (plain
  /// LoadDatabase only records the declarations).
  static Database LoadWithIndexes(std::istream& in);

  /// Creates an execution context. Sessions are independent; one session
  /// runs one query at a time (calls on the same session must not overlap,
  /// except Cancel(), which is safe from any thread).
  std::shared_ptr<Session> OpenSession(SessionOptions options = {});

  /// Registers `oql` under `name` for ExecutePrepared. Parses eagerly (so
  /// syntax errors surface here); compilation happens on first execution
  /// and is shared through the plan cache. Re-preparing a name replaces it.
  void Prepare(const std::string& name, const std::string& oql);
  bool HasPrepared(const std::string& name) const;

  /// Executes a previously Prepare()d statement with the session's current
  /// bindings. Throws EvalError for an unknown name.
  Value ExecutePrepared(Session& session, const std::string& name,
                        QueryStats* stats = nullptr,
                        QueryProfiler* profiler = nullptr);

  /// One-shot: admission -> plan cache (compile on miss) -> execute on the
  /// session's engine with its bindings/deadline/cancel token.
  Value Execute(Session& session, const std::string& oql,
                QueryStats* stats = nullptr,
                QueryProfiler* profiler = nullptr);

  PlanCacheStats cache_stats() const { return cache_.Stats(); }
  void ClearCache() { cache_.Clear(); }

  /// Swaps in new catalog statistics, recomputes the version stamp, and
  /// drops every cached plan compiled under the old stamp (they count as
  /// invalidation evictions, not capacity evictions). Safe against
  /// concurrent Execute calls: each query snapshots the planning config
  /// (catalog + stamp) under config_mu_, so an in-flight compile finishes
  /// under the world it started in and its plan simply becomes
  /// unreachable under the new stamp.
  void UpdateCatalog(const Catalog& catalog) LDB_EXCLUDES(config_mu_);

  /// Service-wide metrics (docs/OBSERVABILITY.md has the catalog). The
  /// registry exists even with metrics disabled; it then renders zeros.
  obs::MetricsRegistry& metrics() const { return metrics_; }
  /// The structured query log (bounded ring; slow queries carry plan +
  /// profile snapshots).
  obs::QueryLog& query_log() const { return query_log_; }

  /// The tail-sampling trace ring: every query assembles a span tree and
  /// submits it here; the ring keeps slow / errored / forced / head-sampled
  /// traces up to `trace_ring_capacity` (docs/OBSERVABILITY.md, Tracing).
  obs::TraceRing& trace_ring() const { return trace_ring_; }

  /// Post-hoc reply-serialization accounting, called by the network server
  /// after it has encoded the first result batch (which happens after the
  /// query-log record and trace were finalized): patches `serialize_ms`
  /// into query-log record `log_id` and appends a "serialize" span (at
  /// `start_ms` from request arrival, `dur_ms` long) to trace `trace_id`
  /// if the ring kept it. Both ids come from QueryStats.
  void RecordSerialize(uint64_t log_id, uint64_t trace_id, double start_ms,
                       double dur_ms);

  /// Live snapshot of every accepted-but-unfinished query (session, query
  /// hash, phase, elapsed, rows and bytes so far) — the service's
  /// pg_stat_activity. Safe from any thread; works with metrics disabled.
  std::vector<obs::ActiveQueryInfo> ActiveQueries() const {
    return active_.Snapshot();
  }

  const Database& db() const { return db_; }
  /// Construction-time options. `optimizer.catalog` reflects construction;
  /// the live planning catalog (which UpdateCatalog swaps) is internal.
  const ServiceOptions& options() const { return options_; }

  /// Queries currently executing (not queued); for tests and monitoring.
  int running() const LDB_EXCLUDES(admission_mu_);

 private:
  class AdmissionGuard;

  /// Metric instruments, registered once at construction and cached so the
  /// per-query path never touches the registry mutex. `enabled` is false
  /// when ServiceOptions::enable_metrics is off or metrics are compiled out.
  struct Instruments {
    bool enabled = false;
    obs::Counter* queries_started = nullptr;
    obs::Counter* queries_ok = nullptr;
    obs::Counter* queries_failed = nullptr;
    obs::Counter* queries_cancelled = nullptr;
    obs::Counter* queries_rejected = nullptr;
    obs::Counter* slow_queries = nullptr;
    obs::Counter* sessions_opened = nullptr;
    obs::Counter* admission_waits = nullptr;
    obs::Counter* admission_timeouts = nullptr;
    obs::Histogram* admission_wait_ms = nullptr;
    obs::Gauge* queries_running = nullptr;
    obs::Gauge* admission_queue_depth = nullptr;
    obs::Histogram* compile_ms = nullptr;
    obs::Histogram* exec_ms = nullptr;
    obs::Histogram* total_ms = nullptr;
    obs::Histogram* result_rows = nullptr;
    obs::Histogram* result_bytes = nullptr;
    obs::Gauge* result_bytes_peak = nullptr;
    obs::Counter* root_rows = nullptr;
    obs::Counter* morsels = nullptr;
    obs::Counter* worker_busy_ns = nullptr;
    obs::Counter* parallel_execs = nullptr;
    obs::Counter* queries_over_budget = nullptr;
    obs::Histogram* query_mem_peak = nullptr;
    obs::Gauge* mem_in_use = nullptr;
    obs::Gauge* active_queries = nullptr;
    /// rows_out per operator class, keyed by static_cast<int>(PhysKind);
    /// fed from the profiler, so only profiled executions contribute.
    std::map<int, obs::Counter*> op_rows;
    /// Highest per-query peak per operator class (tracked executions).
    std::map<int, obs::Gauge*> op_mem_peak;
  };
  void InitInstruments();

  /// Point-in-time copy of the mutable planning state: the optimizer
  /// options whose catalog UpdateCatalog swaps, plus the version stamp
  /// derived from them. Every query takes one snapshot and plans entirely
  /// against it.
  struct PlanningConfig {
    OptimizerOptions optimizer;
    std::string stamp;
  };
  PlanningConfig PlanningSnapshot() const LDB_EXCLUDES(config_mu_);

  /// Cache lookup by normalized-form key; compiles and inserts on a miss.
  /// Sets *cached to whether the lookup hit.
  std::shared_ptr<const PreparedPlan> GetOrCompile(const std::string& oql,
                                                   bool* cached);

  /// Admission + engine dispatch + ordered-sort + budget check; classifies
  /// the outcome into metrics and the query log (status ok / failed /
  /// cancelled / rejected, slow-query plan + profile capture).
  Value Run(Session& session, const std::string& oql, QueryStats* stats,
            QueryProfiler* profiler);

  /// The admitted part of Run (everything inside the admission slot).
  /// `*plan_out` receives the plan as soon as it is known so the caller can
  /// render it for the slow-query log even when execution throws.
  Value RunAdmitted(Session& session, const std::string& oql,
                    QueryStats* stats, QueryProfiler* profiler,
                    std::chrono::steady_clock::time_point t0,
                    obs::QueryLogRecord* rec,
                    std::shared_ptr<const PreparedPlan>* plan_out,
                    obs::QueryResourceContext* resource, uint64_t active_id);

  const Database& db_;
  ServiceOptions options_;  ///< immutable after construction
  mutable PlanCache cache_;

  /// Guards the mutable planning state. Never held across a compile or an
  /// execution — only long enough to copy the config in or out.
  mutable Mutex config_mu_;
  OptimizerOptions optimizer_ LDB_GUARDED_BY(config_mu_);
  /// Schema/catalog/flags fingerprint derived from optimizer_.
  std::string version_stamp_ LDB_GUARDED_BY(config_mu_);

  mutable obs::MetricsRegistry metrics_;
  mutable obs::QueryLog query_log_;
  mutable obs::TraceRing trace_ring_;
  mutable obs::ActiveQueryRegistry active_;
  Instruments ins_;
  std::atomic<uint64_t> next_session_id_{0};

  mutable Mutex admission_mu_;
  CondVar admission_cv_;
  int running_ LDB_GUARDED_BY(admission_mu_) = 0;
  size_t waiting_ LDB_GUARDED_BY(admission_mu_) = 0;

  mutable Mutex prepared_mu_;
  std::map<std::string, std::string> prepared_
      LDB_GUARDED_BY(prepared_mu_);  ///< name -> OQL text
};

}  // namespace ldb

#endif  // LAMBDADB_SERVICE_QUERY_SERVICE_H_
