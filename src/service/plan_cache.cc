#include "src/service/plan_cache.h"

namespace ldb {

void PlanCache::SetMetricHooks(MetricHooks hooks) {
  MutexLock lock(&mu_);
  hooks_ = hooks;
}

std::shared_ptr<const PreparedPlan> PlanCache::Lookup(const std::string& key) {
  MutexLock lock(&mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++misses_;
    if (hooks_.misses != nullptr) hooks_.misses->Inc();
    return nullptr;
  }
  ++hits_;
  if (hooks_.hits != nullptr) hooks_.hits->Inc();
  lru_.splice(lru_.begin(), lru_, it->second);
  return lru_.front().second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const PreparedPlan> plan) {
  MutexLock lock(&mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  by_key_[key] = lru_.begin();
  while (lru_.size() > capacity_ && capacity_ > 0) {
    by_key_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_capacity_;
    if (hooks_.evictions_capacity != nullptr) hooks_.evictions_capacity->Inc();
  }
  if (hooks_.entries != nullptr)
    hooks_.entries->Set(static_cast<int64_t>(lru_.size()));
}

void PlanCache::Clear() {
  MutexLock lock(&mu_);
  evictions_invalidated_ += lru_.size();
  if (hooks_.evictions_invalidated != nullptr)
    hooks_.evictions_invalidated->Inc(lru_.size());
  lru_.clear();
  by_key_.clear();
  if (hooks_.entries != nullptr) hooks_.entries->Set(0);
}

size_t PlanCache::EvictNotMatching(const std::string& stamp_fragment) {
  MutexLock lock(&mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.find(stamp_fragment) == std::string::npos) {
      by_key_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  evictions_invalidated_ += dropped;
  if (hooks_.evictions_invalidated != nullptr && dropped > 0)
    hooks_.evictions_invalidated->Inc(dropped);
  if (hooks_.entries != nullptr)
    hooks_.entries->Set(static_cast<int64_t>(lru_.size()));
  return dropped;
}

PlanCacheStats PlanCache::Stats() const {
  MutexLock lock(&mu_);
  PlanCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions_capacity = evictions_capacity_;
  out.evictions_invalidated = evictions_invalidated_;
  out.evictions = evictions_capacity_ + evictions_invalidated_;
  out.entries = lru_.size();
  out.capacity = capacity_;
  return out;
}

}  // namespace ldb
