#include "src/service/plan_cache.h"

namespace ldb {

std::shared_ptr<const PreparedPlan> PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return lru_.front().second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const PreparedPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  by_key_[key] = lru_.begin();
  while (lru_.size() > capacity_ && capacity_ > 0) {
    by_key_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_key_.clear();
}

PlanCacheStats PlanCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = lru_.size();
  out.capacity = capacity_;
  return out;
}

}  // namespace ldb
