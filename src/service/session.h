// A Session is one client's execution context against a QueryService: its
// parameter bindings, per-query deadline, memory budget, engine knobs, and
// the CancelToken the executors poll (docs/SERVICE.md).
//
// A session runs one query at a time (calls on the same session must not
// overlap); Cancel() may be called from any other thread and aborts the
// in-flight query at its first polling point. The token is re-armed
// (Reset + deadline) at every execution start, so a deadline applies per
// query, not per session lifetime — and a Cancel() landing between queries
// is cleared when the next one starts.

#ifndef LAMBDADB_SERVICE_SESSION_H_
#define LAMBDADB_SERVICE_SESSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "src/obs/trace.h"
#include "src/runtime/cancel.h"
#include "src/runtime/value.h"

namespace ldb {

struct SessionOptions {
  /// Per-query deadline in milliseconds; 0 = none. Armed on the session's
  /// CancelToken when each execution starts, so queueing time counts.
  int64_t deadline_ms = 0;
  /// Per-query memory budget in bytes; 0 = unlimited. Enforced at runtime:
  /// the engines charge their tracked allocations (hash/nest build tables,
  /// nested-loop buffers, collection folds) against the query's resource
  /// context and a charge that crosses the budget aborts the query
  /// mid-build with QueryMemoryExceeded (query-log status "over_budget") —
  /// it does not wait for the result to materialize. The service also
  /// measures the materialized result as a final check, so a query whose
  /// bulk is the result itself (e.g. a plain scan) is still refused rather
  /// than handed to the client. With metrics compiled out (-DLDB_METRICS=
  /// OFF) the in-flight tracking is a no-op and only the result check
  /// applies.
  size_t memory_budget_bytes = 0;
  /// Engine knobs, forwarded into ExecOptions per query.
  int n_threads = 1;
  size_t morsel_size = 2048;
  bool use_slot_frames = true;
};

class Session {
 public:
  /// `id` identifies the session in the query log; QueryService::OpenSession
  /// assigns them from a per-service counter (0 = not service-created).
  explicit Session(SessionOptions options, uint64_t id = 0)
      : options_(std::move(options)), id_(id) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }

  /// Binds parameter `$name` (positional `$1` binds name "1"). Rebinding
  /// replaces; bindings persist across executions until cleared.
  void Bind(const std::string& name, Value v) {
    bindings_[name] = std::move(v);
  }
  void ClearBindings() { bindings_.clear(); }
  const std::map<std::string, Value>& bindings() const { return bindings_; }

  /// Aborts the in-flight query at its first polling point. Safe from any
  /// thread.
  void Cancel() { token_.Cancel(); }

  CancelToken& token() { return token_; }
  const SessionOptions& options() const { return options_; }
  SessionOptions& options() { return options_; }

  /// Remote client address ("ip:port") when this session fronts a network
  /// connection; empty for in-process sessions. Flows into the query log and
  /// ActiveQueries() so an operator can tell who is running what. Set once
  /// at connection setup, before any query runs.
  void set_peer(std::string peer) { peer_ = std::move(peer); }
  const std::string& peer() const { return peer_; }

  /// Trace context for the NEXT query on this session, plus the wall time
  /// the request already spent server-side before the service saw it
  /// (wire read -> worker pickup). Set by the server worker right before
  /// Execute — same single-threaded discipline as bindings — and consumed
  /// by the service, which clears it when the query finishes so a later
  /// untraced query cannot inherit it. In-process callers (tests, embedded
  /// use) may set a context the same way to force-trace one query.
  void set_trace(const obs::TraceContext& ctx, double pre_wait_ms = 0) {
    trace_ctx_ = ctx;
    trace_pre_wait_ms_ = pre_wait_ms;
  }
  void clear_trace() {
    trace_ctx_ = obs::TraceContext();
    trace_pre_wait_ms_ = 0;
  }
  const obs::TraceContext& trace_context() const { return trace_ctx_; }
  double trace_pre_wait_ms() const { return trace_pre_wait_ms_; }

 private:
  SessionOptions options_;
  std::map<std::string, Value> bindings_;
  CancelToken token_;
  uint64_t id_ = 0;
  std::string peer_;
  obs::TraceContext trace_ctx_;
  double trace_pre_wait_ms_ = 0;
};

}  // namespace ldb

#endif  // LAMBDADB_SERVICE_SESSION_H_
