#include "src/service/query_service.h"

#include <chrono>
#include <functional>
#include <sstream>
#include <utility>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/lambdadb.h"
#include "src/oql/parser.h"
#include "src/oql/translate.h"
#include "src/runtime/exec_pipeline.h"
#include "src/runtime/physical_plan.h"
#include "src/runtime/serialize.h"
#include "src/runtime/slot_plan.h"

namespace ldb {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Rough byte footprint of a materialized result, for the session memory
/// budget. Counts payload (strings, element headers, field names) rather
/// than exact allocator overhead — the budget is a serving-side guard, not
/// an accounting tool.
size_t EstimateValueBytes(const Value& v) {
  size_t bytes = sizeof(Value);
  switch (v.kind()) {
    case Value::Kind::kStr:
      bytes += v.AsStr().size();
      break;
    case Value::Kind::kTuple:
      for (const auto& [name, field] : v.AsTuple())
        bytes += name.size() + EstimateValueBytes(field);
      break;
    case Value::Kind::kSet:
    case Value::Kind::kBag:
    case Value::Kind::kList:
      for (const Value& elem : v.AsElems()) bytes += EstimateValueBytes(elem);
      break;
    default:
      break;  // null / bool / int / real / ref fit in the Value header
  }
  return bytes;
}

/// Fingerprint of everything outside the query text that shaped the plan:
/// the schema, the catalog statistics, and the plan-shaping optimizer
/// flags. Folded into every cache key so a plan compiled under one world
/// never serves another.
std::string ComputeVersionStamp(const Schema& schema,
                                const OptimizerOptions& o) {
  std::ostringstream os;
  for (const auto& [name, decl] : schema.classes()) {
    os << name << '[' << decl.extent;
    for (const auto& [attr, type] : decl.attributes)
      os << ' ' << attr << ':' << type->ToString();
    os << ']';
  }
  for (const auto& [extent, card] : o.catalog.cards())
    os << extent << '=' << card << ';';
  os << "n" << o.normalize << "s" << o.simplify << "m" << o.materialize_paths
     << "r" << o.reorder_joins << "h" << o.physical.use_hash_joins << "i"
     << o.physical.use_indexes;
  return std::to_string(std::hash<std::string>{}(os.str()));
}

}  // namespace

/// Counting-semaphore admission with a bounded, deadline-aware wait queue.
/// Construction blocks until a slot frees (or throws); destruction releases
/// the slot, so a throwing execution can never leak one.
class QueryService::AdmissionGuard {
 public:
  AdmissionGuard(QueryService* svc, const CancelToken& token) : svc_(svc) {
    std::unique_lock<std::mutex> lock(svc_->admission_mu_);
    if (svc_->running_ < svc_->options_.max_concurrent) {
      ++svc_->running_;
      return;
    }
    if (svc_->waiting_ >= svc_->options_.max_queue) {
      throw AdmissionError(
          std::to_string(svc_->options_.max_concurrent) +
          " queries running and the wait queue of " +
          std::to_string(svc_->options_.max_queue) + " is full");
    }
    ++svc_->waiting_;
    while (svc_->running_ >= svc_->options_.max_concurrent) {
      svc_->admission_cv_.wait_for(lock, std::chrono::milliseconds(5));
      if (token.Expired()) {
        --svc_->waiting_;
        token.ThrowIfCancelled();
      }
    }
    --svc_->waiting_;
    ++svc_->running_;
  }

  ~AdmissionGuard() {
    std::lock_guard<std::mutex> lock(svc_->admission_mu_);
    --svc_->running_;
    svc_->admission_cv_.notify_one();
  }

  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;

 private:
  QueryService* svc_;
};

QueryService::QueryService(const Database& db, ServiceOptions options)
    : db_(db),
      options_(std::move(options)),
      cache_(options_.plan_cache_capacity) {
  if (options_.max_concurrent < 1) options_.max_concurrent = 1;
  version_stamp_ = ComputeVersionStamp(db_.schema(), options_.optimizer);
}

Database QueryService::LoadWithIndexes(std::istream& in) {
  Database db = LoadDatabase(in);
  RebuildIndexes(db);
  return db;
}

std::shared_ptr<Session> QueryService::OpenSession(SessionOptions options) {
  return std::make_shared<Session>(std::move(options));
}

void QueryService::Prepare(const std::string& name, const std::string& oql) {
  oql::Parse(oql);  // surface syntax errors at prepare time
  std::lock_guard<std::mutex> lock(prepared_mu_);
  prepared_[name] = oql;
}

bool QueryService::HasPrepared(const std::string& name) const {
  std::lock_guard<std::mutex> lock(prepared_mu_);
  return prepared_.count(name) > 0;
}

Value QueryService::ExecutePrepared(Session& session, const std::string& name,
                                    QueryStats* stats,
                                    QueryProfiler* profiler) {
  std::string oql;
  {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    auto it = prepared_.find(name);
    if (it == prepared_.end())
      throw EvalError("unknown prepared statement '" + name + "'");
    oql = it->second;
  }
  return Run(session, oql, stats, profiler);
}

Value QueryService::Execute(Session& session, const std::string& oql,
                            QueryStats* stats, QueryProfiler* profiler) {
  return Run(session, oql, stats, profiler);
}

int QueryService::running() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return running_;
}

std::shared_ptr<const PreparedPlan> QueryService::GetOrCompile(
    const std::string& oql, bool* cached) {
  oql::OrderedQuery q = oql::TranslateWithOrdering(oql::Parse(oql));
  // Normalization is strongly normalizing, so the printed normal form is a
  // canonical name for the query; two texts with the same normal form share
  // one cache entry (docs/SERVICE.md).
  ExprPtr normalized =
      options_.optimizer.normalize ? Normalize(q.comp) : q.comp;
  std::string key = PrintExpr(normalized);
  key += "\n@";
  key += version_stamp_;
  if (q.ordered) {
    // The ordering direction lives outside the calculus term, so it must be
    // part of the key: `order by x asc` and `order by x desc` wrap to the
    // same comprehension.
    key += "|ord:";
    for (bool desc : q.descending) key += desc ? 'd' : 'a';
  }

  if (auto hit = cache_.Lookup(key)) {
    *cached = true;
    return hit;
  }
  *cached = false;

  auto plan = std::make_shared<PreparedPlan>();
  plan->cache_key = key;
  plan->ordered = q.ordered;
  plan->descending = q.descending;
  Optimizer opt(db_.schema(), options_.optimizer);
  try {
    plan->compiled = opt.Compile(q.comp);
    plan->physical =
        PlanPhysical(plan->compiled.simplified, db_, options_.optimizer.physical);
    plan->slots = CompileSlotPlan(plan->physical, db_);
    // A cached plan is served to every future session with this key, so a
    // miscompiled frame layout would corrupt them all: when verification is
    // on, the slot plan must pass the dataflow analysis before it may enter
    // the cache (Compile already verified the calculus/algebra IRs;
    // VerifyError propagates — it is not an UnsupportedError).
    if (options_.optimizer.verify_plans) {
      VerifySlotPlan(plan->slots).ThrowIfFailed();
    }
  } catch (const UnsupportedError&) {
    // Top level is not a comprehension (a record of aggregates, a union of
    // queries, ...): execution routes through Optimizer::Run, which folds
    // the maximal comprehension subterms.
    plan->fallback_run = true;
    plan->compiled = CompiledQuery{};
    plan->compiled.calculus = q.comp;
    plan->compiled.normalized = normalized;
    plan->physical = nullptr;
  }
  cache_.Insert(key, plan);
  return plan;
}

Value QueryService::Run(Session& session, const std::string& oql,
                        QueryStats* stats, QueryProfiler* profiler) {
  CancelToken& token = session.token();
  token.Reset();
  if (session.options().deadline_ms > 0)
    token.SetDeadlineAfterMs(session.options().deadline_ms);

  Clock::time_point t0 = Clock::now();
  AdmissionGuard guard(this, token);
  Clock::time_point t1 = Clock::now();

  bool cached = false;
  std::shared_ptr<const PreparedPlan> plan = GetOrCompile(oql, &cached);
  Clock::time_point t2 = Clock::now();

  ExecOptions eo;
  eo.n_threads = session.options().n_threads;
  eo.morsel_size = session.options().morsel_size;
  eo.use_slot_frames = session.options().use_slot_frames;
  eo.profiler = profiler;
  eo.cancel = &token;
  eo.params = &session.bindings();

  Value result;
  if (plan->fallback_run) {
    OptimizerOptions oo = options_.optimizer;
    oo.exec = eo;
    Optimizer opt(db_.schema(), oo);
    result = opt.Run(plan->compiled.calculus, db_);
  } else if (eo.use_slot_frames) {
    // The cached SlotPlan is immutable and executes with per-call frames,
    // so sharing it across concurrent sessions is safe — and skipping
    // CompileSlotPlan here is most of what a cache hit buys.
    result = ExecuteSlotPlan(plan->slots, db_, eo);
  } else {
    result = ExecutePipelined(plan->physical, db_, eo);
  }
  if (plan->ordered)
    result = internal::SortOrderedResult(result, plan->descending);
  Clock::time_point t3 = Clock::now();

  if (session.options().memory_budget_bytes > 0) {
    size_t estimate = EstimateValueBytes(result);
    if (estimate > session.options().memory_budget_bytes) {
      throw EvalError("result (~" + std::to_string(estimate) +
                      " bytes) exceeds the session memory budget of " +
                      std::to_string(session.options().memory_budget_bytes) +
                      " bytes");
    }
  }

  PlanCacheStats cs = cache_.Stats();
  if (profiler != nullptr) {
    profiler->plan_cached = cached ? 1 : 0;
    profiler->cache_hits = cs.hits;
    profiler->cache_misses = cs.misses;
    profiler->cache_evictions = cs.evictions;
  }
  if (stats != nullptr) {
    stats->plan_cached = cached;
    stats->queue_ms = MsBetween(t0, t1);
    stats->compile_ms = MsBetween(t1, t2);
    stats->exec_ms = MsBetween(t2, t3);
    stats->cache = cs;
  }
  return result;
}

}  // namespace ldb
