#include "src/service/query_service.h"

#include <chrono>
#include <functional>
#include <sstream>
#include <utility>

#include "src/core/normalize.h"
#include "src/core/pretty.h"
#include "src/lambdadb.h"
#include "src/oql/parser.h"
#include "src/oql/translate.h"
#include "src/runtime/exec_pipeline.h"
#include "src/runtime/physical_plan.h"
#include "src/runtime/serialize.h"
#include "src/runtime/slot_plan.h"

// Build identity for ldb_build_info. The root CMakeLists.txt passes both;
// the fallbacks cover builds that bypass it.
#ifndef LDB_GIT_COMMIT
#define LDB_GIT_COMMIT "unknown"
#endif
#ifndef LDB_BUILD_TYPE
#define LDB_BUILD_TYPE "unknown"
#endif

namespace ldb {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Fingerprint of everything outside the query text that shaped the plan:
/// the schema, the catalog statistics, and the plan-shaping optimizer
/// flags. Folded into every cache key so a plan compiled under one world
/// never serves another.
std::string ComputeVersionStamp(const Schema& schema,
                                const OptimizerOptions& o) {
  std::ostringstream os;
  for (const auto& [name, decl] : schema.classes()) {
    os << name << '[' << decl.extent;
    for (const auto& [attr, type] : decl.attributes)
      os << ' ' << attr << ':' << type->ToString();
    os << ']';
  }
  for (const auto& [extent, card] : o.catalog.cards())
    os << extent << '=' << card << ';';
  os << "n" << o.normalize << "s" << o.simplify << "m" << o.materialize_paths
     << "r" << o.reorder_joins << "h" << o.physical.use_hash_joins << "i"
     << o.physical.use_indexes;
  return std::to_string(std::hash<std::string>{}(os.str()));
}

uint64_t ResultRowCount(const Value& v) {
  return v.is_collection() ? static_cast<uint64_t>(v.AsElems().size()) : 1;
}

}  // namespace

/// Counting-semaphore admission with a bounded, deadline-aware wait queue.
/// Construction blocks until a slot frees (or throws); destruction releases
/// the slot, so a throwing execution can never leak one.
class QueryService::AdmissionGuard {
 public:
  AdmissionGuard(QueryService* svc, const CancelToken& token) : svc_(svc) {
    const Instruments& ins = svc_->ins_;
    MutexLock lock(&svc_->admission_mu_);
    if (svc_->running_ < svc_->options_.max_concurrent) {
      ++svc_->running_;
      if (ins.enabled) ins.queries_running->Set(svc_->running_);
      return;
    }
    if (svc_->waiting_ >= svc_->options_.max_queue) {
      throw AdmissionError(
          std::to_string(svc_->options_.max_concurrent) +
          " queries running and the wait queue of " +
          std::to_string(svc_->options_.max_queue) + " is full");
    }
    ++svc_->waiting_;
    if (ins.enabled) {
      ins.admission_waits->Inc();
      ins.admission_queue_depth->Set(static_cast<int64_t>(svc_->waiting_));
    }
    while (svc_->running_ >= svc_->options_.max_concurrent) {
      svc_->admission_cv_.WaitForMs(svc_->admission_mu_, 5);
      if (token.Expired()) {
        --svc_->waiting_;
        if (ins.enabled) {
          ins.admission_timeouts->Inc();
          ins.admission_queue_depth->Set(static_cast<int64_t>(svc_->waiting_));
        }
        token.ThrowIfCancelled();
      }
    }
    --svc_->waiting_;
    ++svc_->running_;
    if (ins.enabled) {
      ins.queries_running->Set(svc_->running_);
      ins.admission_queue_depth->Set(static_cast<int64_t>(svc_->waiting_));
    }
  }

  ~AdmissionGuard() {
    MutexLock lock(&svc_->admission_mu_);
    --svc_->running_;
    if (svc_->ins_.enabled) svc_->ins_.queries_running->Set(svc_->running_);
    svc_->admission_cv_.NotifyOne();
  }

  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;

 private:
  QueryService* svc_;
};

QueryService::QueryService(const Database& db, ServiceOptions options)
    : db_(db),
      options_(std::move(options)),
      cache_(options_.plan_cache_capacity),
      query_log_(options_.query_log_capacity, options_.slow_query_ms),
      trace_ring_(obs::TraceRing::Options{options_.trace_ring_capacity,
                                          options_.slow_query_ms,
                                          options_.trace_head_every}) {
  if (options_.max_concurrent < 1) options_.max_concurrent = 1;
  optimizer_ = options_.optimizer;
  version_stamp_ = ComputeVersionStamp(db_.schema(), optimizer_);
  InitInstruments();
}

void QueryService::InitInstruments() {
  ins_.enabled = options_.enable_metrics && obs::MetricsRegistry::Enabled();
  // Registered before the enabled gate so scrapes can always tell what build
  // (and metrics mode) they are looking at, even on an OFF build where every
  // other series is absent.
  metrics_
      .GetGauge("ldb_build_info",
                "Build identity; value is constant 1, labels carry the info",
                {{"commit", LDB_GIT_COMMIT},
                 {"build_type", LDB_BUILD_TYPE},
                 {"metrics", obs::MetricsRegistry::Enabled() ? "on" : "off"}})
      ->Set(1);
  if (!ins_.enabled) return;
  obs::MetricsRegistry& m = metrics_;
  ins_.queries_started =
      m.GetCounter("ldb_queries_started_total", "Queries the service accepted");
  ins_.queries_ok =
      m.GetCounter("ldb_queries_ok_total", "Queries that returned a result");
  ins_.queries_failed = m.GetCounter("ldb_queries_failed_total",
                                     "Queries that threw (parse/type/eval)");
  ins_.queries_cancelled =
      m.GetCounter("ldb_queries_cancelled_total",
                   "Queries aborted by cancellation or deadline");
  ins_.queries_rejected = m.GetCounter(
      "ldb_queries_rejected_total", "Queries refused at admission (queue full)");
  ins_.slow_queries = m.GetCounter(
      "ldb_slow_queries_total", "Queries at or above the slow-query threshold");
  ins_.sessions_opened =
      m.GetCounter("ldb_sessions_opened_total", "Sessions created");
  ins_.admission_waits = m.GetCounter(
      "ldb_admission_waits_total", "Queries that had to queue for a slot");
  ins_.admission_timeouts =
      m.GetCounter("ldb_admission_timeouts_total",
                   "Queries whose deadline expired while queued");
  ins_.admission_wait_ms = m.GetHistogram(
      "ldb_admission_wait_ms", "Milliseconds spent waiting for admission");
  ins_.queries_running =
      m.GetGauge("ldb_queries_running", "Queries executing right now");
  ins_.admission_queue_depth =
      m.GetGauge("ldb_admission_queue_depth", "Queries waiting for admission");
  ins_.compile_ms = m.GetHistogram(
      "ldb_query_compile_ms", "Milliseconds in parse + key build + compile");
  ins_.exec_ms =
      m.GetHistogram("ldb_query_exec_ms", "Milliseconds executing the plan");
  ins_.total_ms = m.GetHistogram("ldb_query_total_ms",
                                 "End-to-end query milliseconds (incl. queue)");
  ins_.result_rows =
      m.GetHistogram("ldb_result_rows", "Rows in the materialized result");
  ins_.result_bytes = m.GetHistogram(
      "ldb_result_bytes", "Estimated result bytes (every successful query)");
  ins_.result_bytes_peak = m.GetGauge(
      "ldb_result_bytes_peak",
      "Largest estimated result seen (sessions with a memory budget)");
  ins_.root_rows = m.GetCounter("ldb_root_rows_total",
                                "Rows folded by root reduces (all queries)");
  ins_.morsels = m.GetCounter("ldb_morsels_dispatched_total",
                              "Morsels executed by parallel pipelines");
  ins_.worker_busy_ns = m.GetCounter(
      "ldb_worker_busy_ns_total", "Nanoseconds workers spent executing morsels");
  ins_.parallel_execs = m.GetCounter("ldb_parallel_executions_total",
                                     "Queries that ran a parallel pipeline");
  ins_.queries_over_budget =
      m.GetCounter("ldb_queries_over_budget_total",
                   "Queries aborted for exceeding the session memory budget");
  ins_.query_mem_peak = m.GetHistogram(
      "ldb_query_mem_peak_bytes",
      "Peak tracked engine memory per query (joins, nests, folds)");
  ins_.mem_in_use =
      m.GetGauge("ldb_mem_in_use_bytes",
                 "Tracked engine bytes currently held by active queries");
  ins_.active_queries =
      m.GetGauge("ldb_active_queries",
                 "Queries accepted and not yet finished (any phase)");
  static constexpr PhysKind kKinds[] = {
      PhysKind::kUnitRow,      PhysKind::kTableScan, PhysKind::kIndexScan,
      PhysKind::kFilter,       PhysKind::kNLJoin,    PhysKind::kHashJoin,
      PhysKind::kNLOuterJoin,  PhysKind::kHashOuterJoin,
      PhysKind::kUnnest,       PhysKind::kOuterUnnest,
      PhysKind::kHashNest,     PhysKind::kReduce,
  };
  for (PhysKind k : kKinds) {
    ins_.op_rows[static_cast<int>(k)] =
        m.GetCounter("ldb_operator_rows_total",
                     "Rows produced per operator class (profiled executions)",
                     {{"op", PhysKindName(k)}});
    ins_.op_mem_peak[static_cast<int>(k)] = m.GetGauge(
        "ldb_operator_mem_peak_bytes",
        "Highest single-query memory peak per operator class",
        {{"op", PhysKindName(k)}});
  }
  cache_.SetMetricHooks(PlanCache::MetricHooks{
      m.GetCounter("ldb_plan_cache_hits_total", "Plan-cache lookup hits"),
      m.GetCounter("ldb_plan_cache_misses_total",
                   "Plan-cache lookup misses (compiles)"),
      m.GetCounter("ldb_plan_cache_evictions_total",
                   "Plans evicted, by reason", {{"reason", "capacity"}}),
      m.GetCounter("ldb_plan_cache_evictions_total",
                   "Plans evicted, by reason", {{"reason", "invalidated"}}),
      m.GetGauge("ldb_plan_cache_entries", "Plans currently cached"),
  });
}

Database QueryService::LoadWithIndexes(std::istream& in) {
  Database db = LoadDatabase(in);
  RebuildIndexes(db);
  return db;
}

std::shared_ptr<Session> QueryService::OpenSession(SessionOptions options) {
  if (ins_.enabled) ins_.sessions_opened->Inc();
  return std::make_shared<Session>(
      std::move(options), next_session_id_.fetch_add(1) + 1);
}

void QueryService::Prepare(const std::string& name, const std::string& oql) {
  oql::Parse(oql);  // surface syntax errors at prepare time
  MutexLock lock(&prepared_mu_);
  prepared_[name] = oql;
}

bool QueryService::HasPrepared(const std::string& name) const {
  MutexLock lock(&prepared_mu_);
  return prepared_.count(name) > 0;
}

Value QueryService::ExecutePrepared(Session& session, const std::string& name,
                                    QueryStats* stats,
                                    QueryProfiler* profiler) {
  std::string oql;
  {
    MutexLock lock(&prepared_mu_);
    auto it = prepared_.find(name);
    if (it == prepared_.end())
      throw EvalError("unknown prepared statement '" + name + "'");
    oql = it->second;
  }
  return Run(session, oql, stats, profiler);
}

Value QueryService::Execute(Session& session, const std::string& oql,
                            QueryStats* stats, QueryProfiler* profiler) {
  return Run(session, oql, stats, profiler);
}

int QueryService::running() const {
  MutexLock lock(&admission_mu_);
  return running_;
}

void QueryService::RecordSerialize(uint64_t log_id, uint64_t trace_id,
                                   double start_ms, double dur_ms) {
  if (log_id != 0) query_log_.SetSerializeMs(log_id, dur_ms);
  if (trace_id != 0 && trace_ring_.capacity() > 0) {
    obs::TraceSpan s;  // span/parent ids assigned by AppendSpan (root child)
    s.name = "serialize";
    s.lane = "worker";
    s.start_ms = start_ms;
    s.dur_ms = dur_ms;
    trace_ring_.AppendSpan(trace_id, s);
  }
}

QueryService::PlanningConfig QueryService::PlanningSnapshot() const {
  MutexLock lock(&config_mu_);
  return PlanningConfig{optimizer_, version_stamp_};
}

void QueryService::UpdateCatalog(const Catalog& catalog) {
  std::string stamp;
  {
    MutexLock lock(&config_mu_);
    optimizer_.catalog = catalog;
    version_stamp_ = ComputeVersionStamp(db_.schema(), optimizer_);
    stamp = version_stamp_;
  }
  // Plans compiled under the old stamp can never be looked up again (every
  // new key carries the new stamp) — drop them now so the eviction is
  // attributed to invalidation rather than to later capacity pressure.
  // (Outside config_mu_: the cache has its own lock and a racing compile
  // that re-inserts an old-stamp plan merely leaves an unreachable entry
  // for LRU pressure to reclaim.)
  cache_.EvictNotMatching("\n@" + stamp);
}

std::shared_ptr<const PreparedPlan> QueryService::GetOrCompile(
    const std::string& oql, bool* cached) {
  const PlanningConfig cfg = PlanningSnapshot();
  oql::OrderedQuery q = oql::TranslateWithOrdering(oql::Parse(oql));
  // Normalization is strongly normalizing, so the printed normal form is a
  // canonical name for the query; two texts with the same normal form share
  // one cache entry (docs/SERVICE.md).
  ExprPtr normalized = cfg.optimizer.normalize ? Normalize(q.comp) : q.comp;
  std::string key = PrintExpr(normalized);
  key += "\n@";
  key += cfg.stamp;
  if (q.ordered) {
    // The ordering direction lives outside the calculus term, so it must be
    // part of the key: `order by x asc` and `order by x desc` wrap to the
    // same comprehension.
    key += "|ord:";
    for (bool desc : q.descending) key += desc ? 'd' : 'a';
  }

  if (auto hit = cache_.Lookup(key)) {
    *cached = true;
    return hit;
  }
  *cached = false;

  auto plan = std::make_shared<PreparedPlan>();
  plan->cache_key = key;
  plan->ordered = q.ordered;
  plan->descending = q.descending;
  OptimizerOptions compile_opts = options_.optimizer;
  // Stage wall times become "compile:<stage>" child spans in request traces.
  // Compiles happen once per distinct plan, so the counting rewriter's
  // overhead stays off the cached (steady-state) path.
  if (obs::TraceRing::Enabled()) compile_opts.trace = true;
  Optimizer opt(db_.schema(), compile_opts);
  try {
    plan->compiled = opt.Compile(q.comp);
    plan->physical =
        PlanPhysical(plan->compiled.simplified, db_, options_.optimizer.physical);
    plan->slots = CompileSlotPlan(plan->physical, db_);
    // A cached plan is served to every future session with this key, so a
    // miscompiled frame layout would corrupt them all: when verification is
    // on, the slot plan must pass the dataflow analysis before it may enter
    // the cache (Compile already verified the calculus/algebra IRs;
    // VerifyError propagates — it is not an UnsupportedError).
    if (options_.optimizer.verify_plans) {
      VerifySlotPlan(plan->slots).ThrowIfFailed();
    }
  } catch (const UnsupportedError&) {
    // Top level is not a comprehension (a record of aggregates, a union of
    // queries, ...): execution routes through Optimizer::Run, which folds
    // the maximal comprehension subterms.
    plan->fallback_run = true;
    plan->compiled = CompiledQuery{};
    plan->compiled.calculus = q.comp;
    plan->compiled.normalized = normalized;
    plan->physical = nullptr;
  }
  cache_.Insert(key, plan);
  return plan;
}

Value QueryService::Run(Session& session, const std::string& oql,
                        QueryStats* stats, QueryProfiler* profiler) {
  CancelToken& token = session.token();
  token.Reset();
  if (session.options().deadline_ms > 0)
    token.SetDeadlineAfterMs(session.options().deadline_ms);

  if (ins_.enabled) ins_.queries_started->Inc();

  obs::QueryLogRecord rec;
  rec.session = session.id();
  rec.remote = session.peer();
  rec.query_hash = std::hash<std::string>{}(oql);
  rec.threads = session.options().n_threads;
  rec.engine = session.options().use_slot_frames ? "slot" : "env";

  // Adopt the wire-propagated trace context — or mint an id, so slow and
  // failing requests land in the trace ring (and histogram exemplars) even
  // when the client did not ask to be traced. The context is consumed here:
  // a later query on this session cannot inherit it.
  obs::TraceContext tctx = session.trace_context();
  const double pre_wait_ms = session.trace_pre_wait_ms();
  const bool client_traced = obs::TraceRing::Enabled() && tctx.valid();
  session.clear_trace();
  if (!obs::TraceRing::Enabled()) {
    // Compiled-out tracer: drop even a client-sent context so the id the
    // wire reports (EXEC_OK, query log) is honestly 0, not an id no ring
    // will ever resolve.
    tctx = obs::TraceContext{};
  } else if (!client_traced) {
    tctx.trace_id = obs::MintTraceId();
  }
  rec.trace_id = tctx.trace_id;
  rec.queue_wait_ms = pre_wait_ms;

  // Client-traced requests get full fidelity: when the caller passed no
  // profiler, attach a local one so the trace carries per-worker morsel
  // spans. Untraced requests keep the uninstrumented iterator tree.
  QueryProfiler local_profiler;
  if (profiler == nullptr && client_traced && obs::TraceRing::Enabled())
    profiler = &local_profiler;

  // One resource context per query, shared by every thread that executes it
  // and by the active-query registry (which is why it is a shared_ptr: a
  // `.queries` snapshot may still be reading it as the query finishes).
  auto resource = std::make_shared<obs::QueryResourceContext>(
      session.options().memory_budget_bytes);
  uint64_t active_id = active_.Register(session.id(), rec.query_hash, resource,
                                        session.peer());

  Clock::time_point t0 = Clock::now();
  std::shared_ptr<const PreparedPlan> plan;

  // Classifies the outcome, flushes the per-query metrics, captures the
  // slow-query plan/profile, and appends the log record — on every exit
  // path, including the unwinds.
  auto finalize = [&](const char* status, const std::string& error) {
    double total_ms = MsBetween(t0, Clock::now());
    rec.status = status;
    rec.error = error;
    rec.slow = query_log_.IsSlow(total_ms);
    rec.mem_peak_bytes = resource->PeakBytes();
    int dominant = resource->DominantOp();
    if (dominant >= 0) rec.mem_op = PhysKindName(static_cast<PhysKind>(dominant));
    active_.Unregister(active_id);
    if (ins_.enabled) {
      ins_.total_ms->Observe(total_ms, tctx.trace_id);
      ins_.query_mem_peak->Observe(static_cast<double>(rec.mem_peak_bytes));
      ins_.mem_in_use->Set(static_cast<int64_t>(active_.SumInUseBytes()));
      ins_.active_queries->Set(static_cast<int64_t>(active_.Count()));
      for (const auto& [cls, gauge] : ins_.op_mem_peak) {
        uint64_t peak = resource->OpPeakBytes(cls);
        if (peak > 0) gauge->SetMax(static_cast<int64_t>(peak));
      }
      if (rec.slow) ins_.slow_queries->Inc();
      if (profiler != nullptr) {
        // Per-operator-class row totals come from the profiler, which the
        // executors merge exactly once even on a cancellation unwind.
        for (const OperatorStats* s : profiler->Operators()) {
          auto it = ins_.op_rows.find(static_cast<int>(s->kind));
          if (it != ins_.op_rows.end()) it->second->Inc(s->rows_out);
        }
      }
    }
    if (rec.slow) {
      if (plan != nullptr) {
        rec.plan_text = plan->fallback_run
                            ? PrintExpr(plan->compiled.normalized)
                            : PrintPhysicalPlan(plan->physical);
      }
      if (profiler != nullptr) rec.profile_json = ProfileToJson(*profiler);
    }

    // Assemble the span tree from the timings gathered above and offer it
    // to the tail-sampling ring (which decides keep/drop from the outcome).
    // Offsets are from the trace origin: the wire read for served requests
    // (pre_wait_ms before t0), t0 itself for in-process calls.
    if (obs::TraceRing::Enabled() && trace_ring_.capacity() > 0 &&
        tctx.trace_id != 0) {
      obs::RequestTrace t;
      t.trace_id = tctx.trace_id;
      t.client_parent_span_id = tctx.parent_span_id;
      t.client_context = client_traced;
      t.force_sample = (tctx.flags & obs::TraceContext::kForceSample) != 0;
      t.session = rec.session;
      t.query_hash = rec.query_hash;
      t.status = rec.status;
      t.total_ms = pre_wait_ms + total_ms;
      uint64_t next_id = 1;
      auto add = [&t, &next_id](uint64_t parent, std::string name,
                                std::string lane, double start, double dur) {
        obs::TraceSpan s;
        s.span_id = next_id++;
        s.parent_span_id = parent;
        s.name = std::move(name);
        s.lane = std::move(lane);
        s.start_ms = start;
        s.dur_ms = dur;
        t.spans.push_back(std::move(s));
        return t.spans.back().span_id;
      };
      uint64_t root = add(0, "request", "worker", 0, t.total_ms);
      t.root_span_id = root;
      if (pre_wait_ms > 0) add(root, "wire-queue", "io", 0, pre_wait_ms);
      double at = pre_wait_ms;
      add(root, "admission", "worker", at, rec.queue_ms);
      at += rec.queue_ms;
      uint64_t compile = add(root, "compile", "worker", at, rec.compile_ms);
      if (!rec.plan_cached && plan != nullptr &&
          plan->compiled.trace != nullptr) {
        double stage_at = at;
        for (const StageTiming& stage : plan->compiled.trace->stages) {
          add(compile, "compile:" + stage.stage, "worker", stage_at, stage.ms);
          stage_at += stage.ms;
        }
      }
      at += rec.compile_ms;
      uint64_t exec = add(root, "execute", "worker", at, rec.exec_ms);
      if (profiler != nullptr) {
        // One span per morsel on its worker's lane, bounded so a huge scan
        // cannot bloat the ring; the remainder collapses into one marker.
        constexpr size_t kMaxMorselSpans = 256;
        size_t n = profiler->morsels.size();
        for (size_t i = 0; i < n && i < kMaxMorselSpans; ++i) {
          const MorselStats& m = profiler->morsels[i];
          add(exec, "morsel " + std::to_string(m.index),
              "morsel-" + std::to_string(m.worker), at + m.start_ns / 1e6,
              m.dur_ns / 1e6);
        }
        if (n > kMaxMorselSpans)
          add(exec, "+" + std::to_string(n - kMaxMorselSpans) + " morsels",
              "worker", at + rec.exec_ms, 0);
      }
      trace_ring_.Submit(std::move(t));
    }

    uint64_t log_id = query_log_.Append(std::move(rec));
    if (stats != nullptr) {
      stats->trace_id = tctx.trace_id;
      stats->log_id = log_id;
      stats->queue_wait_ms = pre_wait_ms;
    }
  };

  try {
    Value result = RunAdmitted(session, oql, stats, profiler, t0, &rec, &plan,
                               resource.get(), active_id);
    if (ins_.enabled) ins_.queries_ok->Inc();
    finalize("ok", "");
    return result;
  } catch (const AdmissionError& e) {
    if (ins_.enabled) ins_.queries_rejected->Inc();
    finalize("rejected", e.what());
    throw;
  } catch (const QueryCancelled& e) {
    if (ins_.enabled) ins_.queries_cancelled->Inc();
    finalize("cancelled", e.what());
    throw;
  } catch (const obs::QueryMemoryExceeded& e) {
    if (ins_.enabled) ins_.queries_over_budget->Inc();
    finalize("over_budget", e.what());
    throw;
  } catch (const Error& e) {
    if (ins_.enabled) ins_.queries_failed->Inc();
    finalize("failed", e.what());
    throw;
  } catch (...) {
    if (ins_.enabled) ins_.queries_failed->Inc();
    finalize("failed", "(non-Error exception)");
    throw;
  }
}

Value QueryService::RunAdmitted(Session& session, const std::string& oql,
                                QueryStats* stats, QueryProfiler* profiler,
                                Clock::time_point t0, obs::QueryLogRecord* rec,
                                std::shared_ptr<const PreparedPlan>* plan_out,
                                obs::QueryResourceContext* resource,
                                uint64_t active_id) {
  CancelToken& token = session.token();

  AdmissionGuard guard(this, token);
  active_.SetPhase(active_id, "compiling");
  Clock::time_point t1 = Clock::now();
  rec->queue_ms = MsBetween(t0, t1);
  if (ins_.enabled) ins_.admission_wait_ms->Observe(rec->queue_ms, rec->trace_id);

  bool cached = false;
  std::shared_ptr<const PreparedPlan> plan = GetOrCompile(oql, &cached);
  *plan_out = plan;
  Clock::time_point t2 = Clock::now();
  rec->compile_ms = MsBetween(t1, t2);
  rec->plan_cached = cached;
  rec->cache_key = plan->cache_key;
  if (plan->fallback_run) rec->engine = "fallback";
  if (!cached && options_.optimizer.verify_plans && !plan->fallback_run)
    rec->verify = "ok";  // a verifier rejection would have thrown above
  if (ins_.enabled) ins_.compile_ms->Observe(rec->compile_ms, rec->trace_id);

  ExecOptions eo;
  eo.n_threads = session.options().n_threads;
  eo.morsel_size = session.options().morsel_size;
  eo.use_slot_frames = session.options().use_slot_frames;
  eo.profiler = profiler;
  eo.cancel = &token;
  eo.params = &session.bindings();
  eo.resource = resource;
  ExecTotals totals;
  if (ins_.enabled) eo.totals = &totals;

  // The engines fill *eo.totals even on a cancellation unwind, so the
  // always-on counters see partial work from aborted queries too.
  auto flush_totals = [&] {
    if (!ins_.enabled) return;
    ins_.root_rows->Inc(totals.root_rows);
    ins_.morsels->Inc(totals.morsels);
    ins_.worker_busy_ns->Inc(static_cast<uint64_t>(totals.busy_ns));
    if (totals.workers > 0) ins_.parallel_execs->Inc();
  };

  Value result;
  active_.SetPhase(active_id, "executing");
  try {
    if (plan->fallback_run) {
      OptimizerOptions oo = options_.optimizer;
      oo.exec = eo;
      Optimizer opt(db_.schema(), oo);
      result = opt.Run(plan->compiled.calculus, db_);
    } else if (eo.use_slot_frames) {
      // The cached SlotPlan is immutable and executes with per-call frames,
      // so sharing it across concurrent sessions is safe — and skipping
      // CompileSlotPlan here is most of what a cache hit buys.
      result = ExecuteSlotPlan(plan->slots, db_, eo);
    } else {
      result = ExecutePipelined(plan->physical, db_, eo);
    }
  } catch (...) {
    flush_totals();
    throw;
  }
  if (plan->ordered)
    result = internal::SortOrderedResult(result, plan->descending);
  Clock::time_point t3 = Clock::now();
  rec->exec_ms = MsBetween(t2, t3);
  rec->rows = ResultRowCount(result);
  flush_totals();
  if (ins_.enabled) {
    ins_.exec_ms->Observe(rec->exec_ms, rec->trace_id);
    ins_.result_rows->Observe(static_cast<double>(rec->rows));
  }

  // Backstop: an executor path that released its reservations through a
  // no-throw flush may have latched the over-budget verdict without ever
  // surfacing it — refuse the result here rather than return it.
  if (resource != nullptr && resource->OverBudget()) {
    throw obs::QueryMemoryExceeded(resource->InUseBytes(),
                                   session.options().memory_budget_bytes);
  }

  // Tracked engine memory (above) covers the build sides; the materialized
  // result is the other large allocation, so it is budgeted too.
  uint64_t budget = session.options().memory_budget_bytes;
  if (ins_.enabled || budget > 0) {
    size_t estimate = EstimateValueBytes(result);
    if (ins_.enabled) {
      ins_.result_bytes->Observe(static_cast<double>(estimate));
      ins_.result_bytes_peak->SetMax(static_cast<int64_t>(estimate));
    }
    if (budget > 0 && estimate > budget) {
      throw obs::QueryMemoryExceeded(estimate, budget);
    }
  }

  PlanCacheStats cs = cache_.Stats();
  if (profiler != nullptr) {
    profiler->plan_cached = cached ? 1 : 0;
    profiler->cache_hits = cs.hits;
    profiler->cache_misses = cs.misses;
    profiler->cache_evictions = cs.evictions;
  }
  if (stats != nullptr) {
    stats->plan_cached = cached;
    stats->queue_ms = rec->queue_ms;
    stats->compile_ms = rec->compile_ms;
    stats->exec_ms = rec->exec_ms;
    stats->cache = cs;
  }
  return result;
}

}  // namespace ldb
