// An OO7-inspired workload (Carey, DeWitt & Naughton, SIGMOD'93) — the
// standard OODB benchmark design hierarchy, simplified to the two levels the
// unnesting queries exercise:
//
//   class AtomicPart    (extent AtomicParts)    { id, x, y, build_date }
//   class Document      (extent Documents)      { title, text_len }
//   class CompositePart (extent CompositeParts) { id, build_date,
//                                                 documentation (ref Document),
//                                                 parts set<ref AtomicPart>,
//                                                 root_part ref AtomicPart }
//   class BaseAssembly  (extent BaseAssemblies) { id, build_date,
//                                                 components set<ref CompositePart> }
//   class Module        (extent Modules)        { id, man,
//                                                 assemblies set<ref BaseAssembly> }
//
// The OO7 parameters kept: fan-outs (parts per composite, components per
// assembly, assemblies per module) and the build-date ranges that drive the
// classic OO7 queries (Q5: base assemblies that use a component with a more
// recent build date).

#ifndef LAMBDADB_WORKLOAD_OO7_H_
#define LAMBDADB_WORKLOAD_OO7_H_

#include <cstdint>

#include "src/runtime/database.h"

namespace ldb::workload {

struct OO7Params {
  int n_modules = 2;
  int assemblies_per_module = 5;
  int components_per_assembly = 3;
  int n_composite_parts = 50;       ///< shared pool, referenced by assemblies
  int parts_per_composite = 20;
  uint64_t seed = 42;
};

Schema OO7Schema();
Database MakeOO7Database(const OO7Params& params);

}  // namespace ldb::workload

#endif  // LAMBDADB_WORKLOAD_OO7_H_
