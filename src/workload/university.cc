#include "src/workload/university.h"

#include <random>
#include <string>
#include <vector>

namespace ldb::workload {

Schema UniversitySchema() {
  Schema schema;
  schema.AddClass(ClassDecl{
      "Student",
      "Students",
      {{"sid", Type::Int()}, {"name", Type::Str()}},
  });
  schema.AddClass(ClassDecl{
      "Course",
      "Courses",
      {{"cno", Type::Int()}, {"title", Type::Str()}},
  });
  schema.AddClass(ClassDecl{
      "Transcript",
      "Transcripts",
      {{"sid", Type::Int()}, {"cno", Type::Int()}},
  });
  return schema;
}

Database MakeUniversityDatabase(const UniversityParams& params) {
  Database db(UniversitySchema());
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  std::vector<int> db_courses;
  for (int c = 0; c < params.n_courses; ++c) {
    bool is_db = unit(rng) < params.db_course_fraction;
    if (is_db) db_courses.push_back(c);
    db.Insert("Course",
              Value::Tuple({{"cno", Value::Int(c)},
                            {"title", Value::Str(is_db ? "DB" : "other-" +
                                                              std::to_string(c))}}));
  }

  auto enroll = [&](int sid, int cno) {
    db.Insert("Transcript",
              Value::Tuple({{"sid", Value::Int(sid)}, {"cno", Value::Int(cno)}}));
  };

  for (int s = 0; s < params.n_students; ++s) {
    db.Insert("Student",
              Value::Tuple({{"sid", Value::Int(s)},
                            {"name", Value::Str("stu-" + std::to_string(s))}}));
    bool takes_all = unit(rng) < params.take_all_fraction;
    if (takes_all) {
      for (int cno : db_courses) enroll(s, cno);
    }
    for (int c = 0; c < params.n_courses; ++c) {
      if (unit(rng) < params.enroll_probability) enroll(s, c);
    }
  }
  return db;
}

}  // namespace ldb::workload
