// The Company workload: the schema behind the paper's Queries A, B, D, the
// Section 2 Managers example, and the Figure 8 group-by query.
//
//   class Person     (extent Persons)     { name, age }
//   class Manager    (extent Managers)    { name, age, salary, children }
//   class Employee   (extent Employees)   { name, age, salary, dno,
//                                           manager (ref Manager, nullable),
//                                           children set<ref Person> }
//   class Department (extent Departments) { dno, name, budget }
//
// The generator is seeded and parameterized so experiments can sweep
// cardinalities and selectivities; it deliberately produces the edge cases
// the unnesting algorithm must preserve: employees with no children,
// departments with no employees (outer-join padding / count bug), employees
// with no manager (NULL navigation).

#ifndef LAMBDADB_WORKLOAD_COMPANY_H_
#define LAMBDADB_WORKLOAD_COMPANY_H_

#include <cstdint>

#include "src/runtime/database.h"

namespace ldb::workload {

struct CompanyParams {
  int n_departments = 10;
  int n_employees = 100;
  int n_managers = 10;
  int max_children = 3;          ///< per employee/manager, uniform [0, max]
  double childless_fraction = 0.2;
  double empty_department_fraction = 0.2;  ///< departments no employee joins
  double no_manager_fraction = 0.1;        ///< employees with NULL manager
  uint64_t seed = 42;
};

/// Builds the Company schema (no data).
Schema CompanySchema();

/// Builds and populates a Company database.
Database MakeCompanyDatabase(const CompanyParams& params);

}  // namespace ldb::workload

#endif  // LAMBDADB_WORKLOAD_COMPANY_H_
