// The University workload: the schema behind the paper's Query E ("students
// who have taken all database courses", from Claussen et al [7]).
//
//   class Student    (extent Students)    { sid, name }
//   class Course     (extent Courses)     { cno, title }
//   class Transcript (extent Transcripts) { sid, cno }
//
// The generator plants a known fraction of students who took every "DB"
// course, so Query E's expected answer is known by construction.

#ifndef LAMBDADB_WORKLOAD_UNIVERSITY_H_
#define LAMBDADB_WORKLOAD_UNIVERSITY_H_

#include <cstdint>

#include "src/runtime/database.h"

namespace ldb::workload {

struct UniversityParams {
  int n_students = 100;
  int n_courses = 20;
  double db_course_fraction = 0.25;   ///< courses titled "DB"
  double take_all_fraction = 0.1;     ///< students enrolled in every DB course
  double enroll_probability = 0.3;    ///< other (student, course) pairs
  uint64_t seed = 42;
};

Schema UniversitySchema();
Database MakeUniversityDatabase(const UniversityParams& params);

}  // namespace ldb::workload

#endif  // LAMBDADB_WORKLOAD_UNIVERSITY_H_
