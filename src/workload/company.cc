#include "src/workload/company.h"

#include <random>
#include <string>
#include <vector>

namespace ldb::workload {

Schema CompanySchema() {
  Schema schema;
  schema.AddClass(ClassDecl{
      "Person",
      "Persons",
      {{"name", Type::Str()}, {"age", Type::Int()}},
  });
  schema.AddClass(ClassDecl{
      "Manager",
      "Managers",
      {{"name", Type::Str()},
       {"age", Type::Int()},
       {"salary", Type::Real()},
       {"children", Type::Set(Type::Class("Person"))}},
  });
  schema.AddClass(ClassDecl{
      "Employee",
      "Employees",
      {{"name", Type::Str()},
       {"age", Type::Int()},
       {"salary", Type::Real()},
       {"dno", Type::Int()},
       {"manager", Type::Class("Manager")},
       {"children", Type::Set(Type::Class("Person"))}},
  });
  schema.AddClass(ClassDecl{
      "Department",
      "Departments",
      {{"dno", Type::Int()}, {"name", Type::Str()}, {"budget", Type::Real()}},
  });
  return schema;
}

Database MakeCompanyDatabase(const CompanyParams& params) {
  Database db(CompanySchema());
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> age(18, 70);
  std::uniform_int_distribution<int> child_age(0, 25);
  std::uniform_real_distribution<double> salary(30000.0, 120000.0);

  auto make_children = [&](const std::string& parent, int index) {
    Elems kids;
    if (unit(rng) >= params.childless_fraction) {
      std::uniform_int_distribution<int> n_children(1, std::max(1, params.max_children));
      int n = params.max_children > 0 ? n_children(rng) : 0;
      for (int k = 0; k < n; ++k) {
        Value ref = db.Insert(
            "Person",
            Value::Tuple({{"name", Value::Str(parent + "-kid-" +
                                              std::to_string(index) + "-" +
                                              std::to_string(k))},
                          {"age", Value::Int(child_age(rng))}}));
        kids.push_back(ref);
      }
    }
    return Value::Set(std::move(kids));
  };

  for (int d = 0; d < params.n_departments; ++d) {
    db.Insert("Department",
              Value::Tuple({{"dno", Value::Int(d)},
                            {"name", Value::Str("dept-" + std::to_string(d))},
                            {"budget", Value::Real(1e5 + 1e4 * d)}}));
  }

  std::vector<Value> managers;
  for (int m = 0; m < params.n_managers; ++m) {
    managers.push_back(db.Insert(
        "Manager",
        Value::Tuple({{"name", Value::Str("mgr-" + std::to_string(m))},
                      {"age", Value::Int(age(rng))},
                      {"salary", Value::Real(salary(rng) * 1.5)},
                      {"children", make_children("mgr", m)}})));
  }

  // Departments whose dno falls in the "empty" tail get no employees, so
  // outer-join padding paths are exercised.
  int first_empty_dept = params.n_departments -
      static_cast<int>(params.empty_department_fraction * params.n_departments);
  if (first_empty_dept < 1) first_empty_dept = 1;

  for (int e = 0; e < params.n_employees; ++e) {
    Value manager = Value::Null();
    if (!managers.empty() && unit(rng) >= params.no_manager_fraction) {
      std::uniform_int_distribution<size_t> pick(0, managers.size() - 1);
      manager = managers[pick(rng)];
    }
    std::uniform_int_distribution<int> dept(0, std::max(0, first_empty_dept - 1));
    db.Insert("Employee",
              Value::Tuple({{"name", Value::Str("emp-" + std::to_string(e))},
                            {"age", Value::Int(age(rng))},
                            {"salary", Value::Real(salary(rng))},
                            {"dno", Value::Int(params.n_departments > 0
                                                   ? dept(rng)
                                                   : 0)},
                            {"manager", manager},
                            {"children", make_children("emp", e)}}));
  }
  return db;
}

}  // namespace ldb::workload
