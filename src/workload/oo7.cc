#include "src/workload/oo7.h"

#include <random>
#include <string>
#include <vector>

namespace ldb::workload {

Schema OO7Schema() {
  Schema schema;
  schema.AddClass(ClassDecl{
      "AtomicPart",
      "AtomicParts",
      {{"id", Type::Int()},
       {"x", Type::Int()},
       {"y", Type::Int()},
       {"build_date", Type::Int()}},
  });
  schema.AddClass(ClassDecl{
      "Document",
      "Documents",
      {{"title", Type::Str()}, {"text_len", Type::Int()}},
  });
  schema.AddClass(ClassDecl{
      "CompositePart",
      "CompositeParts",
      {{"id", Type::Int()},
       {"build_date", Type::Int()},
       {"documentation", Type::Class("Document")},
       {"parts", Type::Set(Type::Class("AtomicPart"))},
       {"root_part", Type::Class("AtomicPart")}},
  });
  schema.AddClass(ClassDecl{
      "BaseAssembly",
      "BaseAssemblies",
      {{"id", Type::Int()},
       {"build_date", Type::Int()},
       {"components", Type::Set(Type::Class("CompositePart"))}},
  });
  schema.AddClass(ClassDecl{
      "Module",
      "Modules",
      {{"id", Type::Int()},
       {"man", Type::Str()},
       {"assemblies", Type::Set(Type::Class("BaseAssembly"))}},
  });
  return schema;
}

Database MakeOO7Database(const OO7Params& params) {
  Database db(OO7Schema());
  std::mt19937_64 rng(params.seed);
  // OO7 build dates: assemblies in [1000, 1999], composite parts straddle
  // that range so Q5's "component newer than its assembly" has selective
  // but non-empty answers.
  std::uniform_int_distribution<int> assembly_date(1000, 1999);
  std::uniform_int_distribution<int> composite_date(500, 2499);
  std::uniform_int_distribution<int> part_date(0, 2999);
  std::uniform_int_distribution<int> coord(0, 99999);

  int next_atomic_id = 0;
  std::vector<Value> composites;
  composites.reserve(static_cast<size_t>(params.n_composite_parts));
  for (int cp = 0; cp < params.n_composite_parts; ++cp) {
    Elems parts;
    Value root = Value::Null();
    for (int p = 0; p < params.parts_per_composite; ++p) {
      Value ref = db.Insert(
          "AtomicPart",
          Value::Tuple({{"id", Value::Int(next_atomic_id++)},
                        {"x", Value::Int(coord(rng))},
                        {"y", Value::Int(coord(rng))},
                        {"build_date", Value::Int(part_date(rng))}}));
      if (p == 0) root = ref;
      parts.push_back(ref);
    }
    Value doc = db.Insert(
        "Document",
        Value::Tuple({{"title", Value::Str("doc-" + std::to_string(cp))},
                      {"text_len", Value::Int(100 + cp)}}));
    composites.push_back(db.Insert(
        "CompositePart",
        Value::Tuple({{"id", Value::Int(cp)},
                      {"build_date", Value::Int(composite_date(rng))},
                      {"documentation", doc},
                      {"parts", Value::Set(std::move(parts))},
                      {"root_part", root}})));
  }

  std::uniform_int_distribution<size_t> pick_comp(0, composites.size() - 1);
  int next_assembly_id = 0;
  for (int m = 0; m < params.n_modules; ++m) {
    Elems assemblies;
    for (int a = 0; a < params.assemblies_per_module; ++a) {
      Elems components;
      for (int c = 0; c < params.components_per_assembly; ++c) {
        components.push_back(composites[pick_comp(rng)]);
      }
      assemblies.push_back(db.Insert(
          "BaseAssembly",
          Value::Tuple({{"id", Value::Int(next_assembly_id++)},
                        {"build_date", Value::Int(assembly_date(rng))},
                        {"components", Value::Set(std::move(components))}})));
    }
    db.Insert("Module",
              Value::Tuple({{"id", Value::Int(m)},
                            {"man", Value::Str("man-" + std::to_string(m))},
                            {"assemblies", Value::Set(std::move(assemblies))}}));
  }
  return db;
}

}  // namespace ldb::workload
