#include "src/workload/travel.h"

#include <random>
#include <string>

namespace ldb::workload {

Schema TravelSchema() {
  Schema schema;
  schema.AddClass(ClassDecl{
      "Room",
      "Rooms",
      {{"bed_num", Type::Int()}},
  });
  schema.AddClass(ClassDecl{
      "Hotel",
      "Hotels",
      {{"name", Type::Str()},
       {"price", Type::Real()},
       {"rooms", Type::Set(Type::Class("Room"))}},
  });
  schema.AddClass(ClassDecl{
      "City",
      "Cities",
      {{"name", Type::Str()}, {"hotels", Type::Set(Type::Class("Hotel"))}},
  });
  schema.AddClass(ClassDecl{
      "Attraction",
      "Attractions",
      {{"name", Type::Str()}},
  });
  schema.AddClass(ClassDecl{
      "State",
      "States",
      {{"name", Type::Str()},
       {"attractions", Type::Set(Type::Class("Attraction"))}},
  });
  return schema;
}

Database MakeTravelDatabase(const TravelParams& params) {
  Database db(TravelSchema());
  std::mt19937_64 rng(params.seed);
  std::uniform_int_distribution<int> beds(1, 4);
  std::uniform_real_distribution<double> price(40.0, 400.0);

  for (int c = 0; c < params.n_cities; ++c) {
    Elems hotels;
    for (int h = 0; h < params.hotels_per_city; ++h) {
      Elems rooms;
      for (int r = 0; r < params.rooms_per_hotel; ++r) {
        rooms.push_back(db.Insert(
            "Room", Value::Tuple({{"bed_num", Value::Int(beds(rng))}})));
      }
      std::string hotel_name =
          "hotel-" + std::to_string(c) + "-" + std::to_string(h);
      hotels.push_back(db.Insert(
          "Hotel", Value::Tuple({{"name", Value::Str(hotel_name)},
                                 {"price", Value::Real(price(rng))},
                                 {"rooms", Value::Set(std::move(rooms))}})));
    }
    // City 0 is always "Arlington" so the Section 2 hotel query has matches.
    std::string city_name = c == 0 ? "Arlington" : "city-" + std::to_string(c);
    db.Insert("City", Value::Tuple({{"name", Value::Str(city_name)},
                                    {"hotels", Value::Set(std::move(hotels))}}));
  }

  for (int s = 0; s < params.n_states; ++s) {
    Elems attractions;
    for (int a = 0; a < params.attractions_per_state; ++a) {
      // Attractions intentionally reuse hotel names sometimes so the "hotel
      // named like a Texas attraction" query has hits.
      std::string name = (a % 2 == 0)
          ? "hotel-" + std::to_string(a) + "-0"
          : "sight-" + std::to_string(s) + "-" + std::to_string(a);
      attractions.push_back(
          db.Insert("Attraction", Value::Tuple({{"name", Value::Str(name)}})));
    }
    std::string state_name = s == 0 ? "Texas" : "state-" + std::to_string(s);
    db.Insert("State",
              Value::Tuple({{"name", Value::Str(state_name)},
                            {"attractions", Value::Set(std::move(attractions))}}));
  }
  return db;
}

}  // namespace ldb::workload
