// The Travel workload: the schema behind the Section 2 hotel query (Cities /
// hotels / rooms / States / attractions), which exercises normalization-only
// unnesting (rules N7/N8 — Kim's type-N and type-J nestings).
//
//   class Room       (extent Rooms)       { bed_num }
//   class Hotel      (extent Hotels)      { name, price, rooms set<ref Room> }
//   class City       (extent Cities)      { name, hotels set<ref Hotel> }
//   class Attraction (extent Attractions) { name }
//   class State      (extent States)      { name, attractions set<ref Attraction> }

#ifndef LAMBDADB_WORKLOAD_TRAVEL_H_
#define LAMBDADB_WORKLOAD_TRAVEL_H_

#include <cstdint>

#include "src/runtime/database.h"

namespace ldb::workload {

struct TravelParams {
  int n_cities = 20;
  int n_states = 10;
  int hotels_per_city = 5;
  int rooms_per_hotel = 4;
  int attractions_per_state = 5;
  uint64_t seed = 42;
};

Schema TravelSchema();
Database MakeTravelDatabase(const TravelParams& params);

}  // namespace ldb::workload

#endif  // LAMBDADB_WORKLOAD_TRAVEL_H_
