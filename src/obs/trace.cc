#include "src/obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

namespace ldb {
namespace obs {

uint64_t MintTraceId() {
  thread_local uint64_t state = 0;
  if (state == 0) {
    uint64_t clock = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    uint64_t tid = std::hash<std::thread::id>()(std::this_thread::get_id());
    state = clock ^ (tid * 0x9e3779b97f4a7c15ULL) ^ 0x2545f4914f6cdd1dULL;
  }
  // splitmix64 step: every call advances the thread-local state.
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return z != 0 ? z : 1;
}

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return std::string(buf, 16);
}

uint64_t TraceIdFromHex(const std::string& hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  uint64_t v = 0;
  for (char c : hex) {
    uint64_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return 0;
    }
    v = (v << 4) | d;
  }
  return v;
}

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Stable lane -> Chrome tid mapping: lanes appear as thread rows in the
/// order they first show up in the span list ("io" and "worker" first by
/// construction, morsel lanes after).
int LaneTid(std::vector<std::string>* lanes, const std::string& lane) {
  for (size_t i = 0; i < lanes->size(); ++i) {
    if ((*lanes)[i] == lane) return static_cast<int>(i) + 1;
  }
  lanes->push_back(lane);
  return static_cast<int>(lanes->size());
}

std::string SpanJson(const TraceSpan& s) {
  std::string out = "{\"span_id\":" + std::to_string(s.span_id);
  out += ",\"parent_span_id\":" + std::to_string(s.parent_span_id);
  out += ",\"name\":\"" + Escape(s.name) + "\"";
  out += ",\"lane\":\"" + Escape(s.lane) + "\"";
  out += ",\"start_ms\":" + Ms(s.start_ms);
  out += ",\"dur_ms\":" + Ms(s.dur_ms);
  out += "}";
  return out;
}

std::string TraceJson(const RequestTrace& t) {
  std::string out = "{\"trace_id\":\"" + TraceIdHex(t.trace_id) + "\"";
  out += ",\"session\":" + std::to_string(t.session);
  out += ",\"query_hash\":\"" + TraceIdHex(t.query_hash) + "\"";
  out += ",\"status\":\"" + Escape(t.status) + "\"";
  out += ",\"sample_reason\":\"" + Escape(t.sample_reason) + "\"";
  out += ",\"client_context\":";
  out += t.client_context ? "true" : "false";
  out += ",\"total_ms\":" + Ms(t.total_ms);
  out += ",\"spans\":[";
  for (size_t i = 0; i < t.spans.size(); ++i) {
    if (i > 0) out += ",";
    out += SpanJson(t.spans[i]);
  }
  out += "]}";
  return out;
}

}  // namespace

std::string TraceToChromeJson(const RequestTrace& t) {
  std::vector<std::string> lanes;
  std::string ev;
  auto emit = [&ev](const std::string& e) {
    if (!ev.empty()) ev += ",\n";
    ev += e;
  };
  // Process + thread name metadata so Perfetto labels the rows.
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"request " +
       TraceIdHex(t.trace_id) + " (" + Escape(t.status) + ")\"}}");
  for (const TraceSpan& s : t.spans) {
    int tid = LaneTid(&lanes, s.lane);
    double ts_us = s.start_ms * 1000.0;
    double dur_us = s.dur_ms * 1000.0;
    emit("{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
         ",\"name\":\"" + Escape(s.name) + "\",\"ts\":" + Ms(ts_us) +
         ",\"dur\":" + Ms(dur_us) + ",\"args\":{\"span_id\":" +
         std::to_string(s.span_id) + ",\"parent_span_id\":" +
         std::to_string(s.parent_span_id) + "}}");
  }
  for (size_t i = 0; i < lanes.size(); ++i) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(i + 1) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         Escape(lanes[i]) + "\"}}");
  }
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" + ev + "\n]}\n";
}

std::string TraceRingJson(const std::vector<RequestTrace>& traces,
                          size_t capacity, uint64_t submitted, uint64_t kept,
                          uint64_t dropped) {
  std::string out = "{\"capacity\":" + std::to_string(capacity);
  out += ",\"submitted\":" + std::to_string(submitted);
  out += ",\"kept\":" + std::to_string(kept);
  out += ",\"dropped\":" + std::to_string(dropped);
  out += ",\"traces\":[";
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n";
    out += TraceJson(traces[i]);
  }
  out += "]}\n";
  return out;
}

#if LDB_METRICS_ENABLED

bool TraceRing::Submit(RequestTrace t) {
  if (opts_.capacity == 0) return false;
  MutexLock lock(&mu_);
  ++submitted_;
  const char* reason = nullptr;
  if (t.force_sample) {
    reason = "forced";
  } else if (!t.status.empty() && t.status != "ok") {
    reason = "error";
  } else if (opts_.slow_ms > 0 && t.total_ms >= opts_.slow_ms) {
    reason = "slow";
  } else if (opts_.head_every > 0 && (submitted_ - 1) % opts_.head_every == 0) {
    reason = "head";
  }
  if (reason == nullptr) {
    ++dropped_;
    return false;
  }
  t.sample_reason = reason;
  ++kept_;
  if (traces_.size() >= opts_.capacity) traces_.pop_front();
  traces_.push_back(std::move(t));
  return true;
}

bool TraceRing::AppendSpan(uint64_t trace_id, const TraceSpan& span) {
  if (trace_id == 0 || opts_.capacity == 0) return false;
  MutexLock lock(&mu_);
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    if (it->trace_id != trace_id) continue;
    TraceSpan s = span;
    // Late spans may leave ids unset: number after the existing spans and
    // hang off the root so the caller needs no knowledge of the numbering.
    if (s.span_id == 0) {
      uint64_t max_id = 0;
      for (const TraceSpan& have : it->spans)
        if (have.span_id > max_id) max_id = have.span_id;
      s.span_id = max_id + 1;
    }
    if (s.parent_span_id == 0) s.parent_span_id = it->root_span_id;
    double end_ms = s.start_ms + s.dur_ms;
    it->spans.push_back(std::move(s));
    if (end_ms > it->total_ms) it->total_ms = end_ms;
    return true;
  }
  return false;
}

bool TraceRing::Find(uint64_t trace_id, RequestTrace* out) const {
  MutexLock lock(&mu_);
  const RequestTrace* best = nullptr;
  for (const RequestTrace& t : traces_) {
    if (trace_id != 0 ? t.trace_id == trace_id
                      : (best == nullptr || t.total_ms > best->total_ms)) {
      best = &t;
      if (trace_id != 0) break;
    }
  }
  if (best == nullptr) return false;
  *out = *best;
  return true;
}

std::vector<RequestTrace> TraceRing::Snapshot() const {
  MutexLock lock(&mu_);
  return std::vector<RequestTrace>(traces_.begin(), traces_.end());
}

uint64_t TraceRing::submitted() const {
  MutexLock lock(&mu_);
  return submitted_;
}

uint64_t TraceRing::kept() const {
  MutexLock lock(&mu_);
  return kept_;
}

uint64_t TraceRing::dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

#endif  // LDB_METRICS_ENABLED

std::string TraceRing::ToJson() const {
  return TraceRingJson(Snapshot(), capacity(), submitted(), kept(), dropped());
}

}  // namespace obs
}  // namespace ldb
