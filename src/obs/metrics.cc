#include "src/obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "src/runtime/error.h"

namespace ldb {
namespace obs {

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

int Counter::ShardIndex() {
  static std::atomic<unsigned> next{0};
  thread_local int shard =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) % kShards);
  return shard;
}

void Histogram::Observe(double v, uint64_t exemplar_id) {
#if LDB_METRICS_ENABLED
  int idx = 0;
  double ub = 1;
  while (idx < kFiniteBuckets && v > ub) {
    ub *= 2;
    ++idx;
  }
  // idx == kFiniteBuckets means v exceeded the last finite bound (2^38).
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  double s = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(s, s + v, std::memory_order_relaxed)) {
  }
  double m = max_.load(std::memory_order_relaxed);
  while (m < v &&
         !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
  if (exemplar_id != 0) {
    exemplar_val_[idx].store(v, std::memory_order_relaxed);
    exemplar_id_[idx].store(exemplar_id, std::memory_order_relaxed);
  }
#else
  (void)v;
  (void)exemplar_id;
#endif
}

std::pair<uint64_t, double> Histogram::BucketExemplar(int i) const {
  if (i < 0 || i >= kBuckets) return {0, 0};
  return {exemplar_id_[i].load(std::memory_order_relaxed),
          exemplar_val_[i].load(std::memory_order_relaxed)};
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::BucketUpperBound(int i) {
  if (i >= kFiniteBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i);
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> out(kBuckets);
  uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    out[static_cast<size_t>(i)] = cum;
  }
  return out;
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> cum = CumulativeCounts();
  uint64_t total = cum.back();
  if (total == 0) return 0;
  auto rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  for (int i = 0; i < kBuckets; ++i) {
    if (cum[static_cast<size_t>(i)] >= rank) {
      return i < kFiniteBuckets ? BucketUpperBound(i) : Max();
    }
  }
  return Max();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

std::string SeriesKey(const std::string& name,
                      const std::map<std::string, std::string>& labels) {
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  key += '}';
  return key;
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& help,
    std::map<std::string, std::string> labels, const std::string& type) {
  std::string key = SeriesKey(name, labels);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    if (it->second->type != type) {
      throw InternalError("metric '" + key + "' re-registered as " + type +
                          " (was " + it->second->type + ")");
    }
    return it->second;
  }
  entries_.emplace_back();
  Entry* e = &entries_.back();
  e->name = name;
  e->help = help;
  e->labels = std::move(labels);
  e->type = type;
  by_key_[key] = e;
  return e;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     std::map<std::string, std::string> labels) {
  MutexLock lock(&mu_);
  Entry* e = FindOrCreate(name, help, std::move(labels), "counter");
  if (e->counter == nullptr) {
    counters_.emplace_back();
    e->counter = &counters_.back();
  }
  return e->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 std::map<std::string, std::string> labels) {
  MutexLock lock(&mu_);
  Entry* e = FindOrCreate(name, help, std::move(labels), "gauge");
  if (e->gauge == nullptr) {
    gauges_.emplace_back();
    e->gauge = &gauges_.back();
  }
  return e->gauge;
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::string& help,
    std::map<std::string, std::string> labels) {
  MutexLock lock(&mu_);
  Entry* e = FindOrCreate(name, help, std::move(labels), "histogram");
  if (e->histogram == nullptr) {
    histograms_.emplace_back();
    e->histogram = &histograms_.back();
  }
  return e->histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  snap.samples.reserve(by_key_.size());
  for (const auto& [key, e] : by_key_) {  // map order => sorted, deterministic
    (void)key;
    MetricSample s;
    s.name = e->name;
    s.type = e->type;
    s.help = e->help;
    s.labels = e->labels;
    if (e->counter != nullptr) {
      s.value = static_cast<double>(e->counter->Value());
    } else if (e->gauge != nullptr) {
      s.value = static_cast<double>(e->gauge->Value());
    } else if (e->histogram != nullptr) {
      const Histogram& h = *e->histogram;
      std::vector<uint64_t> cum = h.CumulativeCounts();
      s.buckets.reserve(cum.size());
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        s.buckets.emplace_back(Histogram::BucketUpperBound(i),
                               cum[static_cast<size_t>(i)]);
      }
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        auto [ex_id, ex_val] = h.BucketExemplar(i);
        if (ex_id == 0) continue;
        MetricSample::Exemplar ex;
        ex.le = Histogram::BucketUpperBound(i);
        ex.trace_id = ex_id;
        ex.value = ex_val;
        s.exemplars.push_back(ex);
      }
      s.count = h.Count();
      s.sum = h.Sum();
      s.max = h.Max();
      s.p50 = h.Quantile(0.50);
      s.p90 = h.Quantile(0.90);
      s.p99 = h.Quantile(0.99);
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Rendering. Same hand-rolled JSON discipline as src/runtime/profile.cc:
// doubles print with %.17g so SnapshotFromJson round-trips bit-exactly.
// ---------------------------------------------------------------------------

namespace {

void JsonEscape(const std::string& s, std::ostringstream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void JsonDouble(double d, std::ostringstream& os) {
  if (!std::isfinite(d)) {
    os << 0;  // JSON has no Inf/NaN; le=+Inf is encoded as a string instead
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os << buf;
}

/// Prometheus `le` label value: finite bounds are exact powers of two and
/// print as integers; the overflow bucket prints as "+Inf".
std::string FormatLe(double ub) {
  if (std::isinf(ub)) return "+Inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", ub);
  return buf;
}

/// Prometheus sample value: integral values print without a decimal point.
std::string FormatValue(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

std::string TraceHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

std::string RenderLabels(const std::map<std::string, std::string>& labels,
                         const std::string& extra_key = "",
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

// Minimal recursive-descent JSON reader (same shape as the file-local one in
// src/runtime/profile.cc, which is deliberately not exported).
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  void ExpectObjectStart() { Skip(); Expect('{'); }
  bool NextKey(std::string* key) {
    Skip();
    if (Peek() == '}') { ++pos_; return false; }
    if (Peek() == ',') ++pos_;
    Skip();
    *key = ParseString();
    Skip();
    Expect(':');
    return true;
  }
  void ExpectArrayStart() { Skip(); Expect('['); }
  bool NextElement() {
    Skip();
    if (Peek() == ']') { ++pos_; return false; }
    if (Peek() == ',') { ++pos_; Skip(); }
    return true;
  }

  std::string ParseString() {
    Skip();
    Expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    Expect('"');
    return out;
  }

  double ParseNumber() {
    Skip();
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::strchr("+-.eE", s_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) throw ParseError("expected number in metrics JSON");
    return std::strtod(s_.c_str() + start, nullptr);
  }

  uint64_t ParseUint() { return static_cast<uint64_t>(ParseNumber()); }

  void SkipValue() {
    Skip();
    char c = Peek();
    if (c == '"') { ParseString(); return; }
    if (c == '{') {
      ExpectObjectStart();
      std::string k;
      while (NextKey(&k)) SkipValue();
      return;
    }
    if (c == '[') {
      ExpectArrayStart();
      while (NextElement()) SkipValue();
      return;
    }
    ParseNumber();
  }

 private:
  char Peek() const {
    if (pos_ >= s_.size()) throw ParseError("truncated metrics JSON");
    return s_[pos_];
  }
  void Skip() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  void Expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      throw ParseError(std::string("metrics JSON: expected '") + c + "'");
    }
    ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream os;
  std::string last_name;
  for (const MetricSample& s : samples) {
    if (s.name != last_name) {
      os << "# HELP " << s.name << ' ' << s.help << '\n';
      os << "# TYPE " << s.name << ' ' << s.type << '\n';
      last_name = s.name;
    }
    if (s.type == "histogram") {
      // Exemplars render in the OpenMetrics style: the bucket sample line
      // gains a trailing `# {trace_id="..."} <observed value>`, linking the
      // bucket to the last request trace that landed in it.
      size_t ex_i = 0;
      for (const auto& [le, cum] : s.buckets) {
        os << s.name << "_bucket"
           << RenderLabels(s.labels, "le", FormatLe(le)) << ' ' << cum;
        if (ex_i < s.exemplars.size() && s.exemplars[ex_i].le == le) {
          const MetricSample::Exemplar& ex = s.exemplars[ex_i++];
          os << " # {trace_id=\"" << TraceHex(ex.trace_id) << "\"} "
             << FormatValue(ex.value);
        }
        os << '\n';
      }
      os << s.name << "_sum" << RenderLabels(s.labels) << ' '
         << FormatValue(s.sum) << '\n';
      os << s.name << "_count" << RenderLabels(s.labels) << ' ' << s.count
         << '\n';
      os << "# " << s.name << " p50=" << FormatValue(s.p50)
         << " p90=" << FormatValue(s.p90) << " p99=" << FormatValue(s.p99)
         << " max=" << FormatValue(s.max) << '\n';
    } else {
      os << s.name << RenderLabels(s.labels) << ' ' << FormatValue(s.value)
         << '\n';
    }
  }
  return os.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"samples\": [";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": ";
    JsonEscape(s.name, os);
    os << ", \"type\": ";
    JsonEscape(s.type, os);
    os << ", \"help\": ";
    JsonEscape(s.help, os);
    os << ", \"labels\": {";
    bool lf = true;
    for (const auto& [k, v] : s.labels) {
      if (!lf) os << ", ";
      lf = false;
      JsonEscape(k, os);
      os << ": ";
      JsonEscape(v, os);
    }
    os << "}";
    if (s.type == "histogram") {
      os << ", \"buckets\": [";
      bool bf = true;
      for (const auto& [le, cum] : s.buckets) {
        if (!bf) os << ", ";
        bf = false;
        os << "{\"le\": ";
        JsonEscape(FormatLe(le), os);
        os << ", \"cum\": " << cum << "}";
      }
      os << "]";
      if (!s.exemplars.empty()) {
        os << ", \"exemplars\": [";
        bool ef = true;
        for (const MetricSample::Exemplar& ex : s.exemplars) {
          if (!ef) os << ", ";
          ef = false;
          os << "{\"le\": ";
          JsonEscape(FormatLe(ex.le), os);
          os << ", \"trace_id\": ";
          JsonEscape(TraceHex(ex.trace_id), os);
          os << ", \"value\": ";
          JsonDouble(ex.value, os);
          os << "}";
        }
        os << "]";
      }
      os << ", \"count\": " << s.count << ", \"sum\": ";
      JsonDouble(s.sum, os);
      os << ", \"max\": ";
      JsonDouble(s.max, os);
      os << ", \"p50\": ";
      JsonDouble(s.p50, os);
      os << ", \"p90\": ";
      JsonDouble(s.p90, os);
      os << ", \"p99\": ";
      JsonDouble(s.p99, os);
    } else {
      os << ", \"value\": ";
      JsonDouble(s.value, os);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

MetricsSnapshot SnapshotFromJson(const std::string& json) {
  MetricsSnapshot snap;
  JsonReader r(json);
  r.ExpectObjectStart();
  std::string key;
  while (r.NextKey(&key)) {
    if (key != "samples") {
      r.SkipValue();
      continue;
    }
    r.ExpectArrayStart();
    while (r.NextElement()) {
      r.ExpectObjectStart();
      MetricSample s;
      std::string f;
      while (r.NextKey(&f)) {
        if (f == "name") s.name = r.ParseString();
        else if (f == "type") s.type = r.ParseString();
        else if (f == "help") s.help = r.ParseString();
        else if (f == "labels") {
          r.ExpectObjectStart();
          std::string lk;
          while (r.NextKey(&lk)) s.labels[lk] = r.ParseString();
        } else if (f == "buckets") {
          r.ExpectArrayStart();
          while (r.NextElement()) {
            r.ExpectObjectStart();
            double le = 0;
            uint64_t cum = 0;
            std::string bf;
            while (r.NextKey(&bf)) {
              if (bf == "le") {
                std::string tok = r.ParseString();
                le = tok == "+Inf" ? std::numeric_limits<double>::infinity()
                                   : std::strtod(tok.c_str(), nullptr);
              } else if (bf == "cum") {
                cum = r.ParseUint();
              } else {
                r.SkipValue();
              }
            }
            s.buckets.emplace_back(le, cum);
          }
        } else if (f == "exemplars") {
          r.ExpectArrayStart();
          while (r.NextElement()) {
            r.ExpectObjectStart();
            MetricSample::Exemplar ex;
            std::string ef;
            while (r.NextKey(&ef)) {
              if (ef == "le") {
                std::string tok = r.ParseString();
                ex.le = tok == "+Inf"
                            ? std::numeric_limits<double>::infinity()
                            : std::strtod(tok.c_str(), nullptr);
              } else if (ef == "trace_id") {
                ex.trace_id = std::strtoull(r.ParseString().c_str(), nullptr, 16);
              } else if (ef == "value") {
                ex.value = r.ParseNumber();
              } else {
                r.SkipValue();
              }
            }
            s.exemplars.push_back(ex);
          }
        } else if (f == "count") s.count = r.ParseUint();
        else if (f == "sum") s.sum = r.ParseNumber();
        else if (f == "max") s.max = r.ParseNumber();
        else if (f == "p50") s.p50 = r.ParseNumber();
        else if (f == "p90") s.p90 = r.ParseNumber();
        else if (f == "p99") s.p99 = r.ParseNumber();
        else if (f == "value") s.value = r.ParseNumber();
        else r.SkipValue();
      }
      snap.samples.push_back(std::move(s));
    }
  }
  return snap;
}

}  // namespace obs
}  // namespace ldb
