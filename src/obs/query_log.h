// Structured query log: a bounded in-memory ring of QueryLogRecord, one per
// query the QueryService finished (any status). Records above the slow-query
// threshold additionally capture the rendered physical plan and a profiler
// snapshot so a slow query can be diagnosed offline from the log alone.
//
// The ring is append-only under a mutex (one lock per *query*, nothing on
// row paths) and overwrites the oldest record once `capacity` is reached;
// `dropped()` counts the overwritten records.

#ifndef LAMBDADB_OBS_QUERY_LOG_H_
#define LAMBDADB_OBS_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/thread_annotations.h"

namespace ldb {
namespace obs {

/// One finished query. `status` is one of:
///   "ok"          — completed and returned a result
///   "failed"      — threw (parse/type/eval/verify/internal error)
///   "cancelled"   — CancelToken fired or the session deadline expired
///   "rejected"    — admission queue full or admission deadline exceeded
///   "over_budget" — aborted (or refused at materialization) because the
///                   query exceeded the session's memory budget
struct QueryLogRecord {
  uint64_t id = 0;         ///< assigned by Append(); monotone across the log
  uint64_t session = 0;    ///< owning session id (0 = service-internal)
  std::string remote;      ///< client address ("ip:port") for queries that
                           ///< arrived over the wire protocol; "" in-process
  uint64_t query_hash = 0; ///< std::hash of the raw OQL text
  std::string cache_key;   ///< normalized calculus + version stamp ("" if
                           ///< the query failed before compilation)
  std::string status;
  std::string error;       ///< what() when status != "ok"
  bool plan_cached = false;
  uint64_t trace_id = 0;     ///< request trace id (0 = untraced); the key
                             ///< for TraceRing::Find / INTROSPECT trace-by-id
  double queue_wait_ms = 0;  ///< wire-read -> worker pickup (server-side
                             ///< pending-queue wait; 0 for in-process calls)
  double queue_ms = 0;       ///< admission-queue wait inside the service
  double compile_ms = 0;
  double exec_ms = 0;
  double serialize_ms = 0;   ///< result serialization on the server worker
                             ///< (recorded post-hoc; 0 for in-process calls)
  uint64_t rows = 0;       ///< result rows (collection size; 1 for scalars)
  uint64_t mem_peak_bytes = 0;  ///< peak tracked engine memory (0 untracked)
  std::string mem_op;      ///< operator class holding the largest peak
                           ///< ("" when nothing was charged)
  std::string engine;      ///< "slot" | "env" | "fallback"
  int threads = 1;
  std::string verify;      ///< "" (not run) | "ok" — a verifier rejection
                           ///< surfaces as status="failed" with the error
  bool slow = false;       ///< total >= slow threshold: plan/profile captured
  std::string plan_text;     ///< rendered physical plan (slow queries only)
  std::string profile_json;  ///< ProfileToJson snapshot (slow + profiled)

  /// One-line human-readable rendering (oqlsh `.querylog`).
  std::string ToString() const;
};

class QueryLog {
 public:
  /// `slow_ms <= 0` disables slow-query capture entirely.
  explicit QueryLog(size_t capacity, double slow_ms)
      : capacity_(capacity == 0 ? 1 : capacity), slow_ms_(slow_ms) {
    ring_.resize(capacity_);
  }

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// A query whose total wall time reaches the threshold *exactly* is slow.
  bool IsSlow(double total_ms) const {
    return slow_ms_ > 0 && total_ms >= slow_ms_;
  }
  double slow_threshold_ms() const { return slow_ms_; }
  size_t capacity() const { return capacity_; }

  /// Assigns the record's id and stores it, overwriting the oldest record
  /// when the ring is full. Returns the assigned id.
  uint64_t Append(QueryLogRecord rec) LDB_EXCLUDES(mu_);

  /// The most recent `n` records, oldest-first.
  std::vector<QueryLogRecord> Tail(size_t n) const LDB_EXCLUDES(mu_);

  /// Fills in the server-side serialize time on an already-appended record.
  /// The service appends the record when the query finishes, but the reply
  /// is serialized *after* that on the server worker — this is the post-hoc
  /// hook. Returns false when the record has been overwritten by wraparound.
  bool SetSerializeMs(uint64_t id, double serialize_ms) LDB_EXCLUDES(mu_);

  uint64_t appended() const LDB_EXCLUDES(mu_);  ///< records ever appended
  uint64_t dropped() const LDB_EXCLUDES(mu_);   ///< overwritten by wraparound
  uint64_t slow_count() const LDB_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  const double slow_ms_;
  mutable Mutex mu_;
  std::vector<QueryLogRecord> ring_ LDB_GUARDED_BY(mu_);
  uint64_t appended_ LDB_GUARDED_BY(mu_) = 0;
  uint64_t slow_ LDB_GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace ldb

#endif  // LAMBDADB_OBS_QUERY_LOG_H_
