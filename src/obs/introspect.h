// JSON renderings of the service's introspection surfaces — the active-query
// registry and the query log — shared by the wire INTROSPECT opcode
// (docs/WIRE.md), the bench report's active_queries splice, and the SIGUSR1
// snapshot dump. One canonical serializer per surface keeps the remote view
// byte-identical to the in-process one (tests/trace_test.cc pins the
// parity), which is what makes "fetch it over the wire" trustworthy.
//
// Layering: obs — may be included by service/net; never by runtime.

#ifndef LAMBDADB_OBS_INTROSPECT_H_
#define LAMBDADB_OBS_INTROSPECT_H_

#include <string>
#include <vector>

#include "src/obs/query_log.h"
#include "src/obs/resource.h"

namespace ldb {
namespace obs {

/// `[{"query_id": ..., "session": ..., "phase": "...", ...}, ...]` — the
/// shape check_observability.py validates in the bench report.
std::string ActiveQueriesToJson(const std::vector<ActiveQueryInfo>& queries);

/// `[{"id": ..., "status": "...", "queue_wait_ms": ..., ...}, ...]`,
/// oldest-first. Slow-query captures (plan text, profile JSON) are elided —
/// they can be arbitrarily large and the wire view is a tail summary.
std::string QueryLogToJson(const std::vector<QueryLogRecord>& records);

}  // namespace obs
}  // namespace ldb

#endif  // LAMBDADB_OBS_INTROSPECT_H_
