#include "src/obs/resource.h"

namespace ldb {
namespace obs {

void MemoryTracker::Flush() {
#if LDB_METRICS_ENABLED
  FlushNoThrow();
  if (ctx_ != nullptr && ctx_->OverBudget()) {
    throw QueryMemoryExceeded(
        "query memory (" + std::to_string(ctx_->InUseBytes()) +
        " bytes in use, peak " + std::to_string(ctx_->PeakBytes()) +
        ") exceeds the session memory budget of " +
        std::to_string(ctx_->budget_bytes()) + " bytes");
  }
#endif
}

void MemoryTracker::FlushNoThrow() {
#if LDB_METRICS_ENABLED
  if (ctx_ == nullptr) {
    unflushed_ = 0;
    return;
  }
  for (int c = 0; c < QueryResourceContext::kMaxOpClasses; ++c) {
    if (pending_[c] != 0) {
      ctx_->Apply(c, pending_[c]);
      pending_[c] = 0;
    }
  }
  unflushed_ = 0;
#endif
}

uint64_t ActiveQueryRegistry::Register(
    uint64_t session, uint64_t query_hash,
    std::shared_ptr<const QueryResourceContext> ctx, std::string remote) {
  MutexLock lock(&mu_);
  uint64_t id = ++next_id_;
  Entry& e = entries_[id];
  e.session = session;
  e.remote = std::move(remote);
  e.query_hash = query_hash;
  e.start = std::chrono::steady_clock::now();
  e.phase = "queued";
  e.ctx = std::move(ctx);
  return id;
}

void ActiveQueryRegistry::SetPhase(uint64_t id, const char* phase) {
  MutexLock lock(&mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.phase = phase;
}

void ActiveQueryRegistry::Unregister(uint64_t id) {
  MutexLock lock(&mu_);
  entries_.erase(id);
}

std::vector<ActiveQueryInfo> ActiveQueryRegistry::Snapshot() const {
  auto now = std::chrono::steady_clock::now();
  MutexLock lock(&mu_);
  std::vector<ActiveQueryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    ActiveQueryInfo info;
    info.query_id = id;
    info.session = e.session;
    info.remote = e.remote;
    info.query_hash = e.query_hash;
    info.phase = e.phase;
    info.elapsed_ms =
        std::chrono::duration<double, std::milli>(now - e.start).count();
    if (e.ctx != nullptr) {
      info.rows = e.ctx->RowsSoFar();
      info.mem_in_use_bytes = e.ctx->InUseBytes();
      info.mem_peak_bytes = e.ctx->PeakBytes();
    }
    out.push_back(std::move(info));
  }
  return out;
}

uint64_t ActiveQueryRegistry::SumInUseBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [id, e] : entries_) {
    if (e.ctx != nullptr) total += e.ctx->InUseBytes();
  }
  return total;
}

size_t ActiveQueryRegistry::Count() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace obs
}  // namespace ldb
