#include "src/obs/introspect.h"

#include <cinttypes>
#include <cstdio>

namespace ldb {
namespace obs {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return std::string(buf, 16);
}

}  // namespace

std::string ActiveQueriesToJson(const std::vector<ActiveQueryInfo>& queries) {
  std::string out = "[";
  for (size_t i = 0; i < queries.size(); ++i) {
    const ActiveQueryInfo& q = queries[i];
    if (i > 0) out += ", ";
    out += "{\"query_id\": " + std::to_string(q.query_id);
    out += ", \"session\": " + std::to_string(q.session);
    out += ", \"phase\": \"" + Escape(q.phase) + "\"";
    out += ", \"elapsed_ms\": " + Num(q.elapsed_ms);
    out += ", \"rows\": " + std::to_string(q.rows);
    out += ", \"mem_in_use_bytes\": " + std::to_string(q.mem_in_use_bytes);
    out += ", \"mem_peak_bytes\": " + std::to_string(q.mem_peak_bytes);
    out += ", \"remote\": \"" + Escape(q.remote) + "\"}";
  }
  out += "]";
  return out;
}

std::string QueryLogToJson(const std::vector<QueryLogRecord>& records) {
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    const QueryLogRecord& r = records[i];
    if (i > 0) out += ",\n";
    out += "{\"id\": " + std::to_string(r.id);
    out += ", \"session\": " + std::to_string(r.session);
    out += ", \"remote\": \"" + Escape(r.remote) + "\"";
    out += ", \"query_hash\": \"" + Hex16(r.query_hash) + "\"";
    out += ", \"status\": \"" + Escape(r.status) + "\"";
    out += ", \"error\": \"" + Escape(r.error) + "\"";
    out += ", \"plan_cached\": ";
    out += r.plan_cached ? "true" : "false";
    out += ", \"trace_id\": \"" + Hex16(r.trace_id) + "\"";
    out += ", \"queue_wait_ms\": " + Num(r.queue_wait_ms);
    out += ", \"queue_ms\": " + Num(r.queue_ms);
    out += ", \"compile_ms\": " + Num(r.compile_ms);
    out += ", \"exec_ms\": " + Num(r.exec_ms);
    out += ", \"serialize_ms\": " + Num(r.serialize_ms);
    out += ", \"rows\": " + std::to_string(r.rows);
    out += ", \"mem_peak_bytes\": " + std::to_string(r.mem_peak_bytes);
    out += ", \"mem_op\": \"" + Escape(r.mem_op) + "\"";
    out += ", \"engine\": \"" + Escape(r.engine) + "\"";
    out += ", \"threads\": " + std::to_string(r.threads);
    out += ", \"verify\": \"" + Escape(r.verify) + "\"";
    out += ", \"slow\": ";
    out += r.slow ? "true" : "false";
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace ldb
