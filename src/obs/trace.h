// End-to-end request tracing: the per-request span model, the wire-propagated
// trace context, and the tail-sampled trace ring (docs/OBSERVABILITY.md,
// "Request tracing").
//
// A served query crosses four thread domains — client, server IO thread,
// service worker, morsel workers — and the aggregate histograms cannot say
// where one slow request spent its life. Tracing stitches the timings the
// stack already measures (wire read timestamp, admission wait, CompileTrace
// stage times, per-worker morsel stats, serialize time) into one
// RequestTrace: a flat list of parented spans with wall offsets from the
// moment the request's frame was read off the socket.
//
//  * TraceContext — what travels on the wire (trace_id / parent span /
//    flags), minted by net::Client, oqlsh, and ldb_loadgen and appended to
//    EXECUTE/PREPARE payloads as a trailing-bytes extension (docs/WIRE.md).
//    A request without a context is still traced server-side: the service
//    mints an id so slow or failing queries always land in the ring.
//  * RequestTrace / TraceSpan — the assembled trace. Span ids are small
//    integers unique within the trace (root = 1); the client's parent span
//    id, if any, becomes the root's parent so a caller can graft the server
//    trace under its own span tree.
//  * TraceRing — an always-on bounded ring with TAIL sampling: a completed
//    trace is kept when the request was slow (total >= slow_ms), did not
//    end "ok" (failed / cancelled / rejected / over_budget), was
//    head-sampled (1 in head_every), or carried the force-sample flag.
//    Everything else is dropped after one mutex acquisition — the decision
//    needs the outcome, which is why it runs at completion, not admission.
//
// With -DLDB_METRICS=OFF the ring compiles to a zero-capacity no-op
// (Submit/Find/Snapshot are empty inline functions) and the service skips
// span assembly entirely; the wire extension still parses, so traced
// clients interoperate with untraced servers and vice versa.
//
// Layering: obs — may be included by service and net, never by runtime
// (the runtime's only obs dependency stays src/obs/resource.h).

#ifndef LAMBDADB_OBS_TRACE_H_
#define LAMBDADB_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/core/thread_annotations.h"

#ifndef LDB_METRICS_ENABLED
#define LDB_METRICS_ENABLED 1
#endif

namespace ldb {
namespace obs {

/// The wire-propagated part of a trace: enough for the server to parent its
/// spans under the caller's and for the caller to fetch the server-side
/// trace later (INTROSPECT trace-by-id).
struct TraceContext {
  /// Force-keep bit: the ring keeps the trace regardless of outcome.
  static constexpr uint8_t kForceSample = 0x1;

  uint64_t trace_id = 0;        ///< 0 = untraced request
  uint64_t parent_span_id = 0;  ///< caller's span the request runs under
  uint8_t flags = 0;            ///< kForceSample

  bool valid() const { return trace_id != 0; }
};

/// Returns a fresh nonzero 64-bit trace id (splitmix64 over thread-local
/// state seeded from the clock and thread identity — unique enough for a
/// bounded ring, with no cross-thread contention).
uint64_t MintTraceId();

/// 16-digit lowercase hex rendering used everywhere a trace id appears in
/// text (exemplars, JSON, logs), and its inverse ("" / malformed -> 0).
std::string TraceIdHex(uint64_t id);
uint64_t TraceIdFromHex(const std::string& hex);

/// One span. Offsets are wall milliseconds from the trace origin — the
/// moment the server read the request frame (or, for in-process requests,
/// the moment the service accepted the call).
struct TraceSpan {
  uint64_t span_id = 0;         ///< unique within the trace; root = 1
  uint64_t parent_span_id = 0;  ///< 0 = the trace root itself
  std::string name;             ///< "request", "admission", "compile:unnest",
                                ///< "morsel 3", "serialize", ...
  std::string lane;             ///< thread domain: "io", "worker", "morsel-0"
  double start_ms = 0;
  double dur_ms = 0;
};

/// A completed request's trace, as stored in the ring.
struct RequestTrace {
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;           ///< span carrying the whole request
  uint64_t client_parent_span_id = 0;  ///< from TraceContext (0 = none)
  uint64_t session = 0;
  uint64_t query_hash = 0;
  bool client_context = false;  ///< id came over the wire (vs. server-minted)
  bool force_sample = false;    ///< TraceContext::kForceSample was set
  std::string status;           ///< query-log status: "ok" | "failed" | ...
  std::string sample_reason;    ///< set by the ring: "slow" | "error" |
                                ///< "head" | "forced"
  double total_ms = 0;          ///< origin -> last span end
  std::vector<TraceSpan> spans;
};

/// Chrome trace-event JSON for one trace (open at ui.perfetto.dev). Each
/// lane becomes a thread row; spans are "X" events at their wall offsets.
std::string TraceToChromeJson(const RequestTrace& t);

/// Self-contained JSON document for a ring snapshot: counters plus every
/// kept trace with its spans. The SIGUSR1 / --trace-dump artifact format.
std::string TraceRingJson(const std::vector<RequestTrace>& traces,
                          size_t capacity, uint64_t submitted, uint64_t kept,
                          uint64_t dropped);

/// Bounded tail-sampling store of completed RequestTraces. One mutex
/// acquisition per completed request (never on row paths); oldest kept
/// trace is evicted when full.
class TraceRing {
 public:
  struct Options {
    size_t capacity = 64;    ///< kept traces retained; 0 disables the ring
    double slow_ms = 50;     ///< keep when total_ms >= slow_ms (<= 0: never)
    uint32_t head_every = 128;  ///< also keep 1 in N submissions (0: never)
  };

  static constexpr bool Enabled() { return LDB_METRICS_ENABLED != 0; }

  TraceRing() : TraceRing(Options()) {}
  explicit TraceRing(Options opts) : opts_(opts) {}
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Capacity after the compile gate: 0 with metrics compiled out.
  size_t capacity() const { return Enabled() ? opts_.capacity : 0; }
  double slow_ms() const { return opts_.slow_ms; }

#if LDB_METRICS_ENABLED
  /// Applies the tail-sampling policy and stores the trace when it passes
  /// (filling sample_reason). Returns whether the trace was kept.
  bool Submit(RequestTrace t) LDB_EXCLUDES(mu_);

  /// Appends a late span (the server's serialize/reply work happens after
  /// the service finalized the trace) to a kept trace; extends total_ms to
  /// cover it. No-op (false) when the trace was sampled out or evicted.
  bool AppendSpan(uint64_t trace_id, const TraceSpan& span)
      LDB_EXCLUDES(mu_);

  /// Copies out the trace with this id; trace_id == 0 selects the slowest
  /// kept trace (the "show me the outlier" convenience the INTROSPECT
  /// opcode and ldb_loadgen --trace-out rely on).
  bool Find(uint64_t trace_id, RequestTrace* out) const LDB_EXCLUDES(mu_);

  /// Oldest-first copy of every kept trace.
  std::vector<RequestTrace> Snapshot() const LDB_EXCLUDES(mu_);

  uint64_t submitted() const LDB_EXCLUDES(mu_);
  uint64_t kept() const LDB_EXCLUDES(mu_);
  uint64_t dropped() const LDB_EXCLUDES(mu_);
#else
  bool Submit(RequestTrace) { return false; }
  bool AppendSpan(uint64_t, const TraceSpan&) { return false; }
  bool Find(uint64_t, RequestTrace*) const { return false; }
  std::vector<RequestTrace> Snapshot() const { return {}; }
  uint64_t submitted() const { return 0; }
  uint64_t kept() const { return 0; }
  uint64_t dropped() const { return 0; }
#endif

  /// Ring snapshot rendered with TraceRingJson (empty document when
  /// metrics are compiled out — the --metrics-off CI mode asserts this).
  std::string ToJson() const;

 private:
  const Options opts_;
#if LDB_METRICS_ENABLED
  mutable Mutex mu_;
  std::deque<RequestTrace> traces_ LDB_GUARDED_BY(mu_);
  uint64_t submitted_ LDB_GUARDED_BY(mu_) = 0;
  uint64_t kept_ LDB_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ LDB_GUARDED_BY(mu_) = 0;
#endif
};

}  // namespace obs
}  // namespace ldb

#endif  // LAMBDADB_OBS_TRACE_H_
