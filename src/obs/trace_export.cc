#include "src/obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "src/core/optimizer.h"
#include "src/runtime/profile.h"

namespace ldb {
namespace obs {

namespace {

constexpr int kCompilePid = 1;
constexpr int kExecutePid = 2;
constexpr int kOperatorPid = 3;

void Escape(const std::string& s, std::ostringstream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string Us(double us) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", us < 0 ? 0.0 : us);
  return buf;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostringstream& os) : os_(os) {}

  void Meta(int pid, int tid, const std::string& kind,
            const std::string& name) {
    Sep();
    os_ << "{\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
        << ", \"name\": ";
    Escape(kind, os_);
    os_ << ", \"args\": {\"name\": ";
    Escape(name, os_);
    os_ << "}}";
  }

  void Span(int pid, int tid, const std::string& name, double ts_us,
            double dur_us, const std::string& args_json = "") {
    Sep();
    os_ << "{\"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid
        << ", \"name\": ";
    Escape(name, os_);
    os_ << ", \"ts\": " << Us(ts_us) << ", \"dur\": " << Us(dur_us);
    if (!args_json.empty()) os_ << ", \"args\": " << args_json;
    os_ << "}";
  }

 private:
  void Sep() {
    if (!first_) os_ << ",\n ";
    first_ = false;
  }
  std::ostringstream& os_;
  bool first_ = true;
};

}  // namespace

std::string TraceEventsJson(const QueryProfiler& prof,
                            const CompileTrace* trace) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n ";
  EventWriter w(os);

  if (trace != nullptr && !trace->stages.empty()) {
    w.Meta(kCompilePid, 0, "process_name", "compile");
    w.Meta(kCompilePid, 0, "thread_name", "optimizer");
    double ts = 0;
    for (const StageTiming& st : trace->stages) {
      double dur = st.ms * 1000.0;
      w.Span(kCompilePid, 0, st.stage, ts, dur);
      ts += dur;
    }
  }

  w.Meta(kExecutePid, 0, "process_name", "execute");
  // Group morsels by worker; within one worker morsels ran serially, so
  // sorting by start time yields properly nested (non-overlapping) spans.
  std::map<int, std::vector<const MorselStats*>> by_worker;
  for (const MorselStats& m : prof.morsels) {
    if (m.worker >= 0 && m.dur_ns > 0) by_worker[m.worker].push_back(&m);
  }
  if (by_worker.empty()) {
    w.Meta(kExecutePid, 0, "thread_name", "serial");
    w.Span(kExecutePid, 0, "pipeline", 0, prof.wall_ns / 1000.0);
  } else {
    for (auto& [worker, morsels] : by_worker) {
      w.Meta(kExecutePid, worker, "thread_name",
             "worker " + std::to_string(worker));
      std::sort(morsels.begin(), morsels.end(),
                [](const MorselStats* a, const MorselStats* b) {
                  return a->start_ns < b->start_ns;
                });
      for (const MorselStats* m : morsels) {
        char name[64];
        std::snprintf(name, sizeof name, "morsel %llu [%llu,%llu)",
                      static_cast<unsigned long long>(m->index),
                      static_cast<unsigned long long>(m->lo),
                      static_cast<unsigned long long>(m->hi));
        char args[64];
        std::snprintf(args, sizeof args, "{\"rows\": %llu}",
                      static_cast<unsigned long long>(m->rows));
        w.Span(kExecutePid, worker, name, m->start_ns / 1000.0,
               m->dur_ns / 1000.0, args);
      }
    }
  }

  w.Meta(kOperatorPid, 0, "process_name", "operators (cumulative)");
  for (const OperatorStats* s : prof.Operators()) {
    int tid = s->op_id;
    w.Meta(kOperatorPid, tid, "thread_name",
           "#" + std::to_string(s->op_id) + " " + s->label);
    char args[256];
    std::snprintf(args, sizeof args,
                  "{\"rows_out\": %llu, \"opens\": %llu, \"next_calls\": "
                  "%llu, \"build_rows\": %llu, \"groups\": %llu}",
                  static_cast<unsigned long long>(s->rows_out),
                  static_cast<unsigned long long>(s->opens),
                  static_cast<unsigned long long>(s->next_calls),
                  static_cast<unsigned long long>(s->build_rows),
                  static_cast<unsigned long long>(s->groups));
    w.Span(kOperatorPid, tid, PhysKindName(s->kind), 0,
           (s->open_ns + s->next_ns) / 1000.0, args);
  }

  os << "\n]}";
  return os.str();
}

}  // namespace obs
}  // namespace ldb
