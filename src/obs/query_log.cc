#include "src/obs/query_log.h"

#include <algorithm>
#include <cstdio>

namespace ldb {
namespace obs {

std::string QueryLogRecord::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "#%llu session=%llu %s %s%s queue=%.2fms compile=%.2fms "
                "exec=%.2fms rows=%llu engine=%s threads=%d hash=%016llx",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(session), status.c_str(),
                plan_cached ? "cached" : "compiled", slow ? " SLOW" : "",
                queue_ms, compile_ms, exec_ms,
                static_cast<unsigned long long>(rows), engine.c_str(), threads,
                static_cast<unsigned long long>(query_hash));
  std::string out = buf;
  if (queue_wait_ms > 0 || serialize_ms > 0) {
    std::snprintf(buf, sizeof buf, " queue_wait=%.2fms serialize=%.2fms",
                  queue_wait_ms, serialize_ms);
    out += buf;
  }
  if (trace_id != 0) {
    std::snprintf(buf, sizeof buf, " trace=%016llx",
                  static_cast<unsigned long long>(trace_id));
    out += buf;
  }
  if (!remote.empty()) {
    out += " remote=";
    out += remote;
  }
  if (mem_peak_bytes > 0) {
    std::snprintf(buf, sizeof buf, " mem_peak=%llu",
                  static_cast<unsigned long long>(mem_peak_bytes));
    out += buf;
    if (!mem_op.empty()) {
      out += " mem_op=";
      out += mem_op;
    }
  }
  if (!error.empty()) {
    out += " error=\"";
    out += error;
    out += '"';
  }
  return out;
}

uint64_t QueryLog::Append(QueryLogRecord rec) {
  MutexLock lock(&mu_);
  rec.id = ++appended_;
  if (rec.slow) ++slow_;
  uint64_t id = rec.id;
  ring_[static_cast<size_t>((appended_ - 1) % capacity_)] = std::move(rec);
  return id;
}

std::vector<QueryLogRecord> QueryLog::Tail(size_t n) const {
  MutexLock lock(&mu_);
  size_t live = static_cast<size_t>(std::min<uint64_t>(appended_, capacity_));
  n = std::min(n, live);
  std::vector<QueryLogRecord> out;
  out.reserve(n);
  // Records appended_-n+1 .. appended_ (1-based ids), oldest first.
  for (uint64_t id = appended_ - n + 1; id <= appended_ && n > 0; ++id) {
    out.push_back(ring_[static_cast<size_t>((id - 1) % capacity_)]);
  }
  return out;
}

bool QueryLog::SetSerializeMs(uint64_t id, double serialize_ms) {
  MutexLock lock(&mu_);
  if (id == 0 || id > appended_ || id + capacity_ <= appended_) return false;
  QueryLogRecord& rec = ring_[static_cast<size_t>((id - 1) % capacity_)];
  if (rec.id != id) return false;
  rec.serialize_ms = serialize_ms;
  return true;
}

uint64_t QueryLog::appended() const {
  MutexLock lock(&mu_);
  return appended_;
}

uint64_t QueryLog::dropped() const {
  MutexLock lock(&mu_);
  return appended_ > capacity_ ? appended_ - capacity_ : 0;
}

uint64_t QueryLog::slow_count() const {
  MutexLock lock(&mu_);
  return slow_;
}

}  // namespace obs
}  // namespace ldb
