// Service-wide metrics: sharded counters, gauges, and log-bucketed
// histograms cheap enough to sit on hot paths, collected in a
// MetricsRegistry that renders Prometheus text and JSON snapshots.
//
// Design rules (docs/OBSERVABILITY.md has the full catalog):
//  * Counter::Inc is one relaxed fetch_add on a thread-striped cache line —
//    no locks, no false sharing between worker threads.
//  * Histogram::Observe is one relaxed fetch_add on a power-of-two bucket
//    plus CAS updates of sum/max; it is called once per query, never per row.
//  * Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and is
//    meant for startup / first-use paths; call sites cache the returned
//    pointer, which stays valid for the registry's lifetime.
//  * Building with -DLDB_METRICS=OFF defines LDB_METRICS_ENABLED=0 and
//    compiles Inc/Set/Add/Observe down to empty inline functions, so the
//    "metrics compiled out" baseline really has zero hot-path cost.
//
// The runtime layer never includes this header: engines report through the
// plain ExecTotals struct in src/runtime/physical.h and the QueryService
// (which sees both layers) flushes those totals into the registry.

#ifndef LAMBDADB_OBS_METRICS_H_
#define LAMBDADB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/thread_annotations.h"

#ifndef LDB_METRICS_ENABLED
#define LDB_METRICS_ENABLED 1
#endif

namespace ldb {
namespace obs {

/// Monotonic counter, striped over cache-line-aligned shards so concurrent
/// morsel workers never contend on one line. Value() sums the shards; it is
/// monotone but not a linearizable point-in-time read (fine for metrics).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
#if LDB_METRICS_ENABLED
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  /// Threads are assigned shards round-robin on first use.
  static int ShardIndex();
  Shard shards_[kShards];
};

/// Last-write-wins signed gauge (queue depths, live bytes, cache entries).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
#if LDB_METRICS_ENABLED
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t d) {
#if LDB_METRICS_ENABLED
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  /// Raises the gauge to `v` if it is below (peak tracking).
  void SetMax(int64_t v) {
#if LDB_METRICS_ENABLED
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-bucketed histogram: finite bucket upper bounds are 2^0 .. 2^38 plus a
/// +Inf overflow bucket. Quantile() returns the upper bound of the bucket
/// containing the requested rank (the max observed value for the overflow
/// bucket), so p50/p90/p99 are upper bounds accurate to one power of two.
class Histogram {
 public:
  static constexpr int kFiniteBuckets = 39;  // 2^0 .. 2^38
  static constexpr int kBuckets = kFiniteBuckets + 1;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) { Observe(v, 0); }

  /// Observe with an exemplar: `exemplar_id` (a request trace id, nonzero)
  /// is remembered as the last trace to land in the bucket, alongside the
  /// observed value — two relaxed stores, last-writer-wins. This is what
  /// links "the p99 bucket" back to a concrete fetchable trace.
  void Observe(double v, uint64_t exemplar_id);

  uint64_t Count() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Max() const { return max_.load(std::memory_order_relaxed); }
  /// q in (0, 1]; returns 0 for an empty histogram.
  double Quantile(double q) const;

  /// Upper bound of bucket `i`; +Inf for the last bucket.
  static double BucketUpperBound(int i);
  /// Cumulative counts per bucket (Prometheus `le` semantics).
  std::vector<uint64_t> CumulativeCounts() const;

  /// Last exemplar per bucket: (trace_id, observed value); trace_id == 0
  /// means the bucket never saw an exemplar-carrying observation. The pair
  /// is read with two relaxed loads, so under contention the value may
  /// belong to a different observation than the id — the usual metrics
  /// trade, and irrelevant for "give me *a* trace from this bucket".
  std::pair<uint64_t, double> BucketExemplar(int i) const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<double> sum_{0};
  std::atomic<double> max_{0};
  std::atomic<uint64_t> exemplar_id_[kBuckets] = {};
  std::atomic<double> exemplar_val_[kBuckets] = {};
};

/// One rendered metric (counter/gauge value or full histogram state).
struct MetricSample {
  std::string name;
  std::string type;  ///< "counter" | "gauge" | "histogram"
  std::string help;
  std::map<std::string, std::string> labels;

  double value = 0;  ///< counter/gauge

  /// One histogram-bucket exemplar (OpenMetrics: the last trace that landed
  /// in the bucket). `le` matches the bucket entry it annotates.
  struct Exemplar {
    double le = 0;  ///< bucket upper bound (never +Inf-only; see rendering)
    uint64_t trace_id = 0;
    double value = 0;  ///< the observed value that set the exemplar
  };

  // histogram only:
  std::vector<std::pair<double, uint64_t>> buckets;  ///< (le, cumulative)
  std::vector<Exemplar> exemplars;  ///< buckets with a recorded exemplar only
  uint64_t count = 0;
  double sum = 0;
  double max = 0;
  double p50 = 0, p90 = 0, p99 = 0;
};

/// Point-in-time copy of every registered metric, sorted by (name, labels)
/// so renders are deterministic.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Prometheus text exposition format (histograms expand to _bucket/_sum/
  /// _count series; quantiles are emitted as # comments, not series).
  std::string ToPrometheusText() const;
  /// Self-contained JSON, round-tripped by SnapshotFromJson.
  std::string ToJson() const;
};

/// Parses a snapshot produced by ToJson. Throws ParseError on bad input.
MetricsSnapshot SnapshotFromJson(const std::string& json);

/// Owns every metric instrument. Thread-safe; returned pointers are stable
/// for the registry's lifetime (deque storage behind a mutex).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// True when metrics are compiled in (LDB_METRICS_ENABLED).
  static constexpr bool Enabled() { return LDB_METRICS_ENABLED != 0; }

  Counter* GetCounter(const std::string& name, const std::string& help,
                      std::map<std::string, std::string> labels = {})
      LDB_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  std::map<std::string, std::string> labels = {})
      LDB_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::map<std::string, std::string> labels = {})
      LDB_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const LDB_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string name;
    std::string help;
    std::map<std::string, std::string> labels;
    std::string type;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };
  /// Series identity: name plus rendered labels. Re-registering the same
  /// series returns the existing instrument; a kind mismatch throws.
  Entry* FindOrCreate(const std::string& name, const std::string& help,
                      std::map<std::string, std::string> labels,
                      const std::string& type) LDB_REQUIRES(mu_);

  mutable Mutex mu_;
  // Instrument storage is deques so handed-out pointers stay stable; the
  // instruments themselves are lock-free — mu_ guards only registration
  // state (the containers' structure), never instrument reads/writes.
  std::deque<Counter> counters_ LDB_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ LDB_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ LDB_GUARDED_BY(mu_);
  std::deque<Entry> entries_ LDB_GUARDED_BY(mu_);
  std::map<std::string, Entry*> by_key_ LDB_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace ldb

#endif  // LAMBDADB_OBS_METRICS_H_
