// Per-query resource accounting: tracked memory attribution, rows-so-far,
// runtime budget enforcement, and the live query registry (docs/
// OBSERVABILITY.md has the catalog and docs/SERVICE.md the budget contract).
//
// Three pieces:
//
//  * QueryResourceContext — one per executing query. Atomic current/peak
//    byte counters, globally and per operator class, plus a rows-so-far
//    counter and the session's memory budget. Shared by every thread that
//    works on the query (serial executor, prebuild pass, morsel workers,
//    serial tail).
//  * MemoryTracker — one per evaluator (ExprEvaluator / FrameEvaluator),
//    i.e. one per executing thread. Charges and releases accumulate in
//    plain thread-local fields and flush to the context in batches, so the
//    per-row cost is an add and a compare, not an atomic RMW. A flush that
//    pushes the query over its budget throws QueryMemoryExceeded — the same
//    cooperative-abort shape as cancellation, firing mid-build instead of
//    after the result is materialized.
//  * ActiveQueryRegistry — the service's pg_stat_activity: every admitted
//    query registers (session, query hash, phase, start time, context) and
//    can be snapshotted while still in flight.
//
// Layering: unlike src/obs/metrics.h, this header is deliberately free of
// any metrics machinery so the runtime layer may include it — engines charge
// trackers, and the QueryService (which sees both layers) flushes the
// context's peaks into its MetricsRegistry when the query finishes. Building
// with -DLDB_METRICS=OFF compiles Charge/Release down to empty inline
// functions (the context and registry stay functional: the live-query view
// and the post-hoc result budget do not depend on metrics being compiled
// in; only the mid-flight byte attribution does).
//
// Operator classes are plain ints equal to static_cast<int>(PhysKind), kept
// untyped here so this header does not pull in the physical plan.

#ifndef LAMBDADB_OBS_RESOURCE_H_
#define LAMBDADB_OBS_RESOURCE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/thread_annotations.h"
#include "src/runtime/error.h"

#ifndef LDB_METRICS_ENABLED
#define LDB_METRICS_ENABLED 1
#endif

namespace ldb {
namespace obs {

/// Per-query byte and row accounting, shared across the query's threads.
/// All counters are relaxed atomics: totals are exact because every charge
/// is eventually matched by a release through the same Apply path, while
/// peaks are conservative under concurrency (a worker's flush may land
/// after another's release), which is the usual metrics trade.
class QueryResourceContext {
 public:
  /// One slot per PhysKind (12 today; headroom so this header does not need
  /// the enum).
  static constexpr int kMaxOpClasses = 16;

  /// `budget_bytes` is the session's memory budget; 0 = unlimited.
  explicit QueryResourceContext(uint64_t budget_bytes = 0)
      : budget_(budget_bytes) {}
  QueryResourceContext(const QueryResourceContext&) = delete;
  QueryResourceContext& operator=(const QueryResourceContext&) = delete;

  /// Applies a (possibly negative) byte delta to the query total and to
  /// `op_class` (static_cast<int>(PhysKind); out-of-range deltas only touch
  /// the query total). Positive deltas update peaks and latch the
  /// over-budget flag.
  void Apply(int op_class, int64_t delta) {
    int64_t now = in_use_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) {
      RaiseMax(&peak_, now);
      if (budget_ > 0 && now > static_cast<int64_t>(budget_)) {
        over_budget_.store(true, std::memory_order_relaxed);
      }
    }
    if (op_class >= 0 && op_class < kMaxOpClasses) {
      int64_t op_now =
          op_in_use_[op_class].fetch_add(delta, std::memory_order_relaxed) +
          delta;
      if (delta > 0) RaiseMax(&op_peak_[op_class], op_now);
    }
  }

  uint64_t budget_bytes() const { return budget_; }
  /// True once any charge pushed in-use bytes past the budget. Latched: the
  /// abort unwind releases the reservations, but the flag (and the peak)
  /// still tell the service why the query died.
  bool OverBudget() const {
    return over_budget_.load(std::memory_order_relaxed);
  }

  uint64_t InUseBytes() const { return NonNegative(in_use_); }
  uint64_t PeakBytes() const { return NonNegative(peak_); }
  uint64_t OpInUseBytes(int op_class) const {
    return InRange(op_class) ? NonNegative(op_in_use_[op_class]) : 0;
  }
  uint64_t OpPeakBytes(int op_class) const {
    return InRange(op_class) ? NonNegative(op_peak_[op_class]) : 0;
  }

  /// The operator class with the highest peak (ties: lowest class), or -1
  /// when nothing was charged — the query log's "dominant operator".
  int DominantOp() const {
    int best = -1;
    int64_t best_peak = 0;
    for (int c = 0; c < kMaxOpClasses; ++c) {
      int64_t p = op_peak_[c].load(std::memory_order_relaxed);
      if (p > best_peak) {
        best_peak = p;
        best = c;
      }
    }
    return best;
  }

  /// Root-fold rows produced so far (batched by the executors; advisory).
  void AddRows(uint64_t n) {
    if (n > 0) rows_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t RowsSoFar() const { return rows_.load(std::memory_order_relaxed); }

 private:
  static bool InRange(int c) { return c >= 0 && c < kMaxOpClasses; }
  static uint64_t NonNegative(const std::atomic<int64_t>& v) {
    int64_t x = v.load(std::memory_order_relaxed);
    return x > 0 ? static_cast<uint64_t>(x) : 0;
  }
  static void RaiseMax(std::atomic<int64_t>* m, int64_t v) {
    int64_t cur = m->load(std::memory_order_relaxed);
    while (cur < v &&
           !m->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  const uint64_t budget_;
  std::atomic<int64_t> in_use_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> op_in_use_[kMaxOpClasses] = {};
  std::atomic<int64_t> op_peak_[kMaxOpClasses] = {};
  std::atomic<uint64_t> rows_{0};
  std::atomic<bool> over_budget_{false};
};

/// Thrown by MemoryTracker when a charge flush finds the query over its
/// session memory budget. Subclasses EvalError so callers that treat budget
/// rejection as an evaluation failure keep working; the QueryService catches
/// it specifically and logs status "over_budget".
/// (Declared here rather than error.h so the error hierarchy stays free of
/// accounting concepts; runtime code only ever catches it as EvalError.)
class QueryMemoryExceeded : public EvalError {
 public:
  explicit QueryMemoryExceeded(const std::string& msg) : EvalError(msg) {}
  /// Convenience: "<used> bytes exceeds the session memory budget of
  /// <budget> bytes" (the service's post-hoc result and backstop checks).
  QueryMemoryExceeded(uint64_t used_bytes, uint64_t budget_bytes)
      : EvalError("query memory (~" + std::to_string(used_bytes) +
                  " bytes) exceeds the session memory budget of " +
                  std::to_string(budget_bytes) + " bytes") {}
};

/// Per-thread batching front end over a QueryResourceContext. Disarmed (the
/// default, or when metrics are compiled out) every call is a pointer test.
/// Armed, charges/releases accumulate per operator class in plain int64
/// fields and flush to the shared context once `kFlushBytes` have moved —
/// or every `budget / 4 + 1` bytes when the query has a budget, so small
/// budgets are enforced promptly instead of hiding inside one batch.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;
  ~MemoryTracker() { FlushNoThrow(); }

  /// Attaches the tracker to a query's context (nullptr disarms). Flushes
  /// any pending deltas to the previous context first.
  void Arm(QueryResourceContext* ctx) {
#if LDB_METRICS_ENABLED
    FlushNoThrow();
    ctx_ = ctx;
    flush_bytes_ = kFlushBytes;
    if (ctx_ != nullptr && ctx_->budget_bytes() > 0) {
      uint64_t prompt = ctx_->budget_bytes() / 4 + 1;
      if (prompt < flush_bytes_) flush_bytes_ = prompt;
    }
#else
    (void)ctx;
#endif
  }

  bool armed() const {
#if LDB_METRICS_ENABLED
    return ctx_ != nullptr;
#else
    return false;
#endif
  }
  QueryResourceContext* context() const {
#if LDB_METRICS_ENABLED
    return ctx_;
#else
    return nullptr;
#endif
  }

  /// Reserves `bytes` against `op_class`. May throw QueryMemoryExceeded
  /// when the flush it triggers finds the query over budget.
  void Charge(int op_class, size_t bytes) {
#if LDB_METRICS_ENABLED
    if (ctx_ == nullptr || bytes == 0) return;
    Accumulate(op_class, static_cast<int64_t>(bytes));
    if (unflushed_ >= flush_bytes_) Flush();
#else
    (void)op_class;
    (void)bytes;
#endif
  }

  /// Returns a reservation. Never throws (releases cannot go over budget),
  /// so it is safe from Close() and destructors on the abort unwind.
  void Release(int op_class, size_t bytes) {
#if LDB_METRICS_ENABLED
    if (ctx_ == nullptr || bytes == 0) return;
    Accumulate(op_class, -static_cast<int64_t>(bytes));
    if (unflushed_ >= flush_bytes_) FlushNoThrow();
#else
    (void)op_class;
    (void)bytes;
#endif
  }

  /// Pushes pending deltas to the context; throws QueryMemoryExceeded when
  /// the context reports over budget afterwards.
  void Flush();
  /// Flush variant for destructors and unwind paths: applies the deltas but
  /// swallows the budget verdict.
  void FlushNoThrow();

 private:
  /// Flush threshold without a budget: large enough that a scan-heavy query
  /// touches the shared atomics a handful of times per morsel, small enough
  /// that the in-use gauge tracks reality to within a fraction of a morsel's
  /// state.
  static constexpr uint64_t kFlushBytes = 256 * 1024;

#if LDB_METRICS_ENABLED
  void Accumulate(int op_class, int64_t delta) {
    if (op_class < 0 || op_class >= QueryResourceContext::kMaxOpClasses) {
      op_class = QueryResourceContext::kMaxOpClasses - 1;
    }
    pending_[op_class] += delta;
    unflushed_ += static_cast<uint64_t>(delta < 0 ? -delta : delta);
  }

  QueryResourceContext* ctx_ = nullptr;
  int64_t pending_[QueryResourceContext::kMaxOpClasses] = {};
  uint64_t unflushed_ = 0;
  uint64_t flush_bytes_ = kFlushBytes;
#endif
};

/// One in-flight query as seen by ActiveQueryRegistry::Snapshot().
struct ActiveQueryInfo {
  uint64_t query_id = 0;    ///< registry-assigned, monotone per service
  uint64_t session = 0;
  std::string remote;       ///< client address ("ip:port") for wire-protocol
                            ///< sessions; "" for in-process ones
  uint64_t query_hash = 0;  ///< std::hash of the raw OQL text
  std::string phase;        ///< "queued" | "compiling" | "executing"
  double elapsed_ms = 0;    ///< since the service accepted the query
  uint64_t rows = 0;        ///< root rows folded so far
  uint64_t mem_in_use_bytes = 0;
  uint64_t mem_peak_bytes = 0;
};

/// Live view of every query the service has accepted but not finished.
/// Register/Unregister bracket QueryService::Run; one mutex acquisition per
/// query per transition (never on row paths), so it stays active even with
/// metrics compiled out.
class ActiveQueryRegistry {
 public:
  ActiveQueryRegistry() = default;
  ActiveQueryRegistry(const ActiveQueryRegistry&) = delete;
  ActiveQueryRegistry& operator=(const ActiveQueryRegistry&) = delete;

  /// Registers an accepted query in phase "queued"; returns its id.
  /// `remote` is the owning session's client address ("" in-process).
  uint64_t Register(uint64_t session, uint64_t query_hash,
                    std::shared_ptr<const QueryResourceContext> ctx,
                    std::string remote = {}) LDB_EXCLUDES(mu_);
  /// `phase` must be a string with static storage duration.
  void SetPhase(uint64_t id, const char* phase) LDB_EXCLUDES(mu_);
  void Unregister(uint64_t id) LDB_EXCLUDES(mu_);

  std::vector<ActiveQueryInfo> Snapshot() const LDB_EXCLUDES(mu_);
  /// Sum of in-use bytes across every registered query (the service's
  /// ldb_mem_in_use_bytes gauge).
  uint64_t SumInUseBytes() const LDB_EXCLUDES(mu_);
  size_t Count() const LDB_EXCLUDES(mu_);

 private:
  struct Entry {
    uint64_t session = 0;
    std::string remote;
    uint64_t query_hash = 0;
    std::chrono::steady_clock::time_point start;
    const char* phase = "queued";
    std::shared_ptr<const QueryResourceContext> ctx;
  };

  mutable Mutex mu_;
  std::map<uint64_t, Entry> entries_ LDB_GUARDED_BY(mu_);
  uint64_t next_id_ LDB_GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace ldb

#endif  // LAMBDADB_OBS_RESOURCE_H_
