// Trace-event export: renders a profiled execution (and optionally its
// CompileTrace) as Chrome trace-event JSON, loadable in chrome://tracing or
// Perfetto (ui.perfetto.dev -> "Open trace file").
//
// Lanes:
//   pid 1 "compile"  — one span per optimizer stage, laid end to end;
//   pid 2 "execute"  — one thread lane per morsel worker, one span per
//                      morsel (ts/dur from MorselStats.start_ns/dur_ns);
//                      serial runs get a single "pipeline" span of wall_ns;
//   pid 3 "operators (cumulative)" — one lane per physical operator, one
//                      span whose duration is the operator's cumulative
//                      open_ns + next_ns, so per-operator totals can be read
//                      off the timeline and checked against EXPLAIN ANALYZE.
//
// All timestamps are microseconds (the trace-event format's unit); spans
// within a lane never overlap, so the timeline needs no async-event pairs.

#ifndef LAMBDADB_OBS_TRACE_EXPORT_H_
#define LAMBDADB_OBS_TRACE_EXPORT_H_

#include <string>

namespace ldb {

class QueryProfiler;   // src/runtime/profile.h
struct CompileTrace;   // src/core/optimizer.h

namespace obs {

/// Renders the profile (plus the compile trace when given) as a JSON object
/// `{"displayTimeUnit": "ms", "traceEvents": [...]}`.
std::string TraceEventsJson(const QueryProfiler& prof,
                            const CompileTrace* trace = nullptr);

}  // namespace obs
}  // namespace ldb

#endif  // LAMBDADB_OBS_TRACE_EXPORT_H_
