#include "src/net/wire.h"

#include <cstring>

#include "src/runtime/serialize.h"

namespace ldb {
namespace net {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kHello: return "HELLO";
    case Opcode::kPrepare: return "PREPARE";
    case Opcode::kBind: return "BIND";
    case Opcode::kExecute: return "EXECUTE";
    case Opcode::kFetch: return "FETCH";
    case Opcode::kCancel: return "CANCEL";
    case Opcode::kGoodbye: return "GOODBYE";
    case Opcode::kIntrospect: return "INTROSPECT";
    case Opcode::kHelloOk: return "HELLO_OK";
    case Opcode::kPrepareOk: return "PREPARE_OK";
    case Opcode::kBindOk: return "BIND_OK";
    case Opcode::kExecOk: return "EXEC_OK";
    case Opcode::kRows: return "ROWS";
    case Opcode::kCancelOk: return "CANCEL_OK";
    case Opcode::kGoodbyeOk: return "GOODBYE_OK";
    case Opcode::kIntrospectOk: return "INTROSPECT_OK";
    case Opcode::kError: return "ERROR";
  }
  return "OP_??";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kParse: return "PARSE";
    case ErrorCode::kType: return "TYPE";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kEval: return "EVAL";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kAdmission: return "ADMISSION";
    case ErrorCode::kOverBudget: return "OVER_BUDGET";
    case ErrorCode::kVerify: return "VERIFY";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrorCode::kState: return "STATE";
  }
  return "CODE_??";
}

// -- framing ------------------------------------------------------------------

namespace {

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

std::string EncodeFrame(Opcode op, const std::string& payload) {
  if (payload.size() + 1 > kMaxFrameBytes) {
    throw WireError("frame of " + std::to_string(payload.size() + 1) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame ceiling");
  }
  std::string out;
  out.reserve(5 + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size() + 1));
  out.push_back(static_cast<char>(op));
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(const char* data, size_t n) {
  if (error_) return;  // poisoned: drop everything, the conn must close
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer forever.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

bool FrameDecoder::Next(Frame* out) {
  if (error_) throw WireError("decoder is in the error state");
  if (buf_.size() - pos_ < 4) return false;
  uint32_t length = GetU32(buf_.data() + pos_);
  // Validate before any allocation sized by `length`: a hostile prefix of
  // 0xFFFFFFFF must cost nothing.
  if (length == 0 || length > max_frame_) {
    error_ = true;
    throw WireError("frame length " + std::to_string(length) +
                    " outside (0, " + std::to_string(max_frame_) + "]");
  }
  if (buf_.size() - pos_ < 4 + static_cast<size_t>(length)) return false;
  out->opcode = static_cast<Opcode>(
      static_cast<unsigned char>(buf_[pos_ + 4]));
  out->payload.assign(buf_, pos_ + 5, length - 1);
  pos_ += 4 + static_cast<size_t>(length);
  return true;
}

// -- payload primitives -------------------------------------------------------

void PayloadWriter::U16(uint16_t v) {
  out_.push_back(static_cast<char>(v));
  out_.push_back(static_cast<char>(v >> 8));
}

void PayloadWriter::U32(uint32_t v) { PutU32(&out_, v); }

void PayloadWriter::U64(uint64_t v) {
  PutU32(&out_, static_cast<uint32_t>(v));
  PutU32(&out_, static_cast<uint32_t>(v >> 32));
}

void PayloadWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  U64(bits);
}

void PayloadWriter::Str(const std::string& s) {
  if (s.size() > kMaxFrameBytes) {
    throw WireError("string of " + std::to_string(s.size()) +
                    " bytes exceeds the frame ceiling");
  }
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

const char* PayloadReader::Need(size_t n) {
  if (p_.size() - pos_ < n) {
    throw WireError("payload truncated: need " + std::to_string(n) +
                    " bytes, have " + std::to_string(p_.size() - pos_));
  }
  const char* at = p_.data() + pos_;
  pos_ += n;
  return at;
}

uint8_t PayloadReader::U8() {
  return static_cast<unsigned char>(*Need(1));
}

uint16_t PayloadReader::U16() {
  const char* p = Need(2);
  return static_cast<uint16_t>(static_cast<unsigned char>(p[0]) |
                               static_cast<unsigned char>(p[1]) << 8);
}

uint32_t PayloadReader::U32() { return GetU32(Need(4)); }

uint64_t PayloadReader::U64() {
  uint64_t lo = U32();
  uint64_t hi = U32();
  return lo | hi << 32;
}

double PayloadReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string PayloadReader::Str() {
  uint32_t n = U32();
  // The frame ceiling already bounds n transitively (the payload fits in a
  // frame), but check against remaining() so a lying inner length cannot
  // trigger a large allocation either.
  if (n > remaining()) {
    throw WireError("string length " + std::to_string(n) +
                    " exceeds the remaining payload");
  }
  return std::string(Need(n), n);
}

// -- messages -----------------------------------------------------------------

std::string HelloRequest::Encode() const {
  PayloadWriter w;
  w.U32(version);
  w.U64(deadline_ms);
  w.U64(memory_budget_bytes);
  w.U32(n_threads);
  w.U32(morsel_size);
  w.U8(use_slot_frames);
  return EncodeFrame(Opcode::kHello, w.Take());
}

HelloRequest HelloRequest::Parse(const std::string& payload) {
  PayloadReader r(payload);
  HelloRequest m;
  m.version = r.U32();
  m.deadline_ms = r.U64();
  m.memory_budget_bytes = r.U64();
  m.n_threads = r.U32();
  m.morsel_size = r.U32();
  m.use_slot_frames = r.U8();
  return m;
}

std::string HelloReply::Encode() const {
  PayloadWriter w;
  w.U32(version);
  w.U64(session_id);
  w.Str(server_info);
  return EncodeFrame(Opcode::kHelloOk, w.Take());
}

HelloReply HelloReply::Parse(const std::string& payload) {
  PayloadReader r(payload);
  HelloReply m;
  m.version = r.U32();
  m.session_id = r.U64();
  m.server_info = r.Str();
  return m;
}

namespace {

/// The 17-byte v2 trace-context extension shared by EXECUTE and PREPARE.
/// Emitted only when a context is present; parsed only when the trailing
/// bytes are actually there (a v1 peer's payload ends before them).
void WriteTraceContext(PayloadWriter* w, uint64_t trace_id,
                       uint64_t parent_span_id, uint8_t flags) {
  if (trace_id == 0) return;
  w->U64(trace_id);
  w->U64(parent_span_id);
  w->U8(flags);
}

void ReadTraceContext(PayloadReader* r, uint64_t* trace_id,
                      uint64_t* parent_span_id, uint8_t* flags) {
  if (r->remaining() < 17) return;
  *trace_id = r->U64();
  *parent_span_id = r->U64();
  *flags = r->U8();
}

}  // namespace

std::string PrepareRequest::Encode() const {
  PayloadWriter w;
  w.Str(oql);
  WriteTraceContext(&w, trace_id, parent_span_id, trace_flags);
  return EncodeFrame(Opcode::kPrepare, w.Take());
}

PrepareRequest PrepareRequest::Parse(const std::string& payload) {
  PayloadReader r(payload);
  PrepareRequest m;
  m.oql = r.Str();
  ReadTraceContext(&r, &m.trace_id, &m.parent_span_id, &m.trace_flags);
  return m;
}

std::string PrepareReply::Encode() const {
  PayloadWriter w;
  w.U64(handle);
  return EncodeFrame(Opcode::kPrepareOk, w.Take());
}

PrepareReply PrepareReply::Parse(const std::string& payload) {
  PayloadReader r(payload);
  PrepareReply m;
  m.handle = r.U64();
  return m;
}

std::string BindRequest::Encode() const {
  PayloadWriter w;
  w.U8(clear_first);
  w.U32(static_cast<uint32_t>(params.size()));
  for (const auto& [name, text] : params) {
    w.Str(name);
    w.Str(text);
  }
  return EncodeFrame(Opcode::kBind, w.Take());
}

BindRequest BindRequest::Parse(const std::string& payload) {
  PayloadReader r(payload);
  BindRequest m;
  m.clear_first = r.U8();
  uint32_t n = r.U32();
  // Each param costs >= 8 bytes of length prefixes, so this bound makes a
  // lying count fail fast instead of reserving a huge vector.
  if (static_cast<size_t>(n) * 8 > r.remaining() + 8) {
    throw WireError("bind count " + std::to_string(n) +
                    " exceeds the payload size");
  }
  m.params.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name = r.Str();
    std::string text = r.Str();
    m.params.emplace_back(std::move(name), std::move(text));
  }
  return m;
}

void BindRequest::Add(const std::string& name, const Value& v) {
  params.emplace_back(name, ValueToText(v));
}

std::string ExecuteRequest::Encode() const {
  PayloadWriter w;
  w.U8(mode);
  if (mode == kAdhoc) {
    w.Str(oql);
  } else {
    w.U64(handle);
  }
  w.U64(deadline_ms);
  w.U32(fetch_hint);
  WriteTraceContext(&w, trace_id, parent_span_id, trace_flags);
  return EncodeFrame(Opcode::kExecute, w.Take());
}

ExecuteRequest ExecuteRequest::Parse(const std::string& payload) {
  PayloadReader r(payload);
  ExecuteRequest m;
  m.mode = r.U8();
  if (m.mode == kAdhoc) {
    m.oql = r.Str();
  } else if (m.mode == kPrepared) {
    m.handle = r.U64();
  } else {
    throw WireError("EXECUTE mode " + std::to_string(m.mode) +
                    " is neither ad-hoc (0) nor prepared (1)");
  }
  m.deadline_ms = r.U64();
  m.fetch_hint = r.U32();
  ReadTraceContext(&r, &m.trace_id, &m.parent_span_id, &m.trace_flags);
  return m;
}

std::string ExecReply::Encode() const {
  PayloadWriter w;
  w.U64(rows);
  w.U8(scalar);
  w.U8(plan_cached);
  w.F64(queue_ms);
  w.F64(compile_ms);
  w.F64(exec_ms);
  // v2 trailing extension (always emitted; a v1 client ignores it).
  w.F64(queue_wait_ms);
  w.F64(serialize_ms);
  w.U64(trace_id);
  return EncodeFrame(Opcode::kExecOk, w.Take());
}

ExecReply ExecReply::Parse(const std::string& payload) {
  PayloadReader r(payload);
  ExecReply m;
  m.rows = r.U64();
  m.scalar = r.U8();
  m.plan_cached = r.U8();
  m.queue_ms = r.F64();
  m.compile_ms = r.F64();
  m.exec_ms = r.F64();
  if (r.remaining() >= 24) {
    m.queue_wait_ms = r.F64();
    m.serialize_ms = r.F64();
    m.trace_id = r.U64();
  }
  return m;
}

std::string FetchRequest::Encode() const {
  PayloadWriter w;
  w.U32(max_rows);
  return EncodeFrame(Opcode::kFetch, w.Take());
}

FetchRequest FetchRequest::Parse(const std::string& payload) {
  PayloadReader r(payload);
  FetchRequest m;
  m.max_rows = r.U32();
  return m;
}

std::string RowsReply::Encode() const {
  PayloadWriter w;
  w.U8(has_more);
  w.U32(static_cast<uint32_t>(rows.size()));
  for (const std::string& row : rows) w.Str(row);
  return EncodeFrame(Opcode::kRows, w.Take());
}

RowsReply RowsReply::Parse(const std::string& payload) {
  PayloadReader r(payload);
  RowsReply m;
  m.has_more = r.U8();
  uint32_t n = r.U32();
  if (static_cast<size_t>(n) * 4 > r.remaining() + 4) {
    throw WireError("row count " + std::to_string(n) +
                    " exceeds the payload size");
  }
  m.rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.rows.push_back(r.Str());
  return m;
}

std::string IntrospectRequest::Encode() const {
  PayloadWriter w;
  w.U8(kind);
  w.U32(arg);
  w.U64(trace_id);
  return EncodeFrame(Opcode::kIntrospect, w.Take());
}

IntrospectRequest IntrospectRequest::Parse(const std::string& payload) {
  PayloadReader r(payload);
  IntrospectRequest m;
  m.kind = r.U8();
  m.arg = r.U32();
  m.trace_id = r.U64();
  return m;
}

std::string IntrospectReply::Encode() const {
  PayloadWriter w;
  w.U8(kind);
  w.Str(json);
  return EncodeFrame(Opcode::kIntrospectOk, w.Take());
}

IntrospectReply IntrospectReply::Parse(const std::string& payload) {
  PayloadReader r(payload);
  IntrospectReply m;
  m.kind = r.U8();
  m.json = r.Str();
  return m;
}

std::string ErrorReply::Encode() const {
  PayloadWriter w;
  w.U16(static_cast<uint16_t>(code));
  w.Str(message);
  return EncodeFrame(Opcode::kError, w.Take());
}

ErrorReply ErrorReply::Parse(const std::string& payload) {
  PayloadReader r(payload);
  ErrorReply m;
  m.code = static_cast<ErrorCode>(r.U16());
  m.message = r.Str();
  return m;
}

}  // namespace net
}  // namespace ldb
