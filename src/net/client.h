// Blocking client for the ldb wire protocol (src/net/wire.h, docs/WIRE.md).
// Used by oqlsh's .connect mode, tools/ldb_loadgen, and the e2e tests.
//
// One thread drives the request/response conversation; Cancel() is the only
// member safe to call concurrently — it writes a CANCEL frame on the same
// socket (sends are mutex-serialized), and the response reader transparently
// skips the out-of-band CANCEL_OK acknowledgements, so a cancel can race an
// EXECUTE without corrupting the conversation.

#ifndef LAMBDADB_NET_CLIENT_H_
#define LAMBDADB_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/thread_annotations.h"
#include "src/net/wire.h"
#include "src/obs/trace.h"
#include "src/runtime/error.h"
#include "src/runtime/value.h"

namespace ldb {
namespace net {

/// An ERROR frame surfaced client-side, carrying the server's wire error
/// code (the projection of the structured error taxonomy).
class RemoteError : public Error {
 public:
  RemoteError(ErrorCode code, const std::string& message)
      : Error(std::string("server error [") + ErrorCodeName(code) +
              "]: " + message),
        code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One executed query: the server's EXEC_OK stats plus the decoded result.
struct ClientResult {
  ExecReply exec;
  /// Decoded rows (collection elements, or the single scalar value).
  std::vector<Value> rows;
  bool scalar() const { return exec.scalar != 0; }
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (IPv4 literal or "localhost") and runs the HELLO handshake.
  /// `recv_timeout_ms` bounds every blocking read so a wedged server fails
  /// the call instead of hanging the caller.
  void Connect(const std::string& host, uint16_t port,
               const HelloRequest& hello = {}, int recv_timeout_ms = 30000);
  /// Best-effort GOODBYE handshake, then closes the socket. Idempotent.
  void Close();
  bool connected() const { return fd_ >= 0; }

  const HelloReply& hello() const { return hello_; }
  uint64_t session_id() const { return hello_.session_id; }

  /// PREPARE: OQL -> connection-local handle.
  uint64_t Prepare(const std::string& oql);
  /// BIND: parameter values ($1 binds name "1").
  void Bind(const std::vector<std::pair<std::string, Value>>& params,
            bool clear_first = true);

  /// Ad-hoc EXECUTE; FETCHes the whole result in bounded batches.
  /// `fetch_batch` = rows per batch (0 = server default).
  ClientResult Execute(const std::string& oql, uint64_t deadline_ms = 0,
                       uint32_t fetch_batch = 0);
  /// EXECUTE of a Prepare()d handle.
  ClientResult ExecutePrepared(uint64_t handle, uint64_t deadline_ms = 0,
                               uint32_t fetch_batch = 0);

  /// Requests cancellation of the in-flight query. Safe from any thread.
  void Cancel();

  /// INTROSPECT (v2): fetches one observability JSON document off the
  /// server — IntrospectRequest::kMetrics / kActiveQueries / kQueryLog /
  /// kTrace (docs/WIRE.md). For kTrace, `trace_id` 0 means "the slowest
  /// kept trace". Throws RemoteError when the server cannot answer (v1
  /// server, unknown kind, trace sampled out).
  std::string Introspect(uint8_t kind, uint32_t arg = 0,
                         uint64_t trace_id = 0);

  /// Whether every EXECUTE mints and sends a trace context (default on).
  /// A traced request's server-side trace is fetchable by id while the
  /// tail-sampling ring keeps it; untraced requests still get server-minted
  /// ids, just not known to the client in advance.
  void set_trace_requests(bool on) { trace_requests_ = on; }
  /// Extra TraceContext flags for minted contexts (e.g. kForceSample).
  void set_trace_flags(uint8_t flags) { trace_flags_ = flags; }
  /// Trace id of the most recent EXECUTE: the server-reported id when the
  /// reply carried one (v2), else the minted id (0 when tracing is off).
  uint64_t last_trace_id() const { return last_trace_id_; }

  // -- low-level access (protocol tests) --------------------------------------

  /// Sends raw bytes verbatim (not necessarily a well-formed frame).
  void SendRaw(const std::string& bytes) LDB_EXCLUDES(send_mu_);
  /// Sends one well-formed frame.
  void SendFrame(Opcode op, const std::string& payload);
  /// Blocks for the next frame, whatever it is (CANCEL_OK included).
  Frame ReadFrame();

 private:
  /// Reads frames until one with `expected` arrives. Skips CANCEL_OK,
  /// throws RemoteError on ERROR, WireError on anything else.
  Frame Await(Opcode expected);
  ClientResult RunExecute(const ExecuteRequest& req);

  /// Atomic because Cancel() (any thread) sends on the socket while the
  /// driving thread may be inside Connect()/Close() assigning it; the fd
  /// value itself is the entire shared state, so an atomic load/store is
  /// the right-sized fix (a torn read of a plain int would be UB).
  std::atomic<int> fd_{-1};
  FrameDecoder decoder_;  ///< driving thread only
  HelloReply hello_;      ///< written by Connect, read-only afterwards
  Mutex send_mu_;  ///< serializes socket writes (Cancel vs requests)
  bool trace_requests_ = true;   ///< driving thread only
  uint8_t trace_flags_ = 0;      ///< driving thread only
  uint64_t last_trace_id_ = 0;   ///< driving thread only
};

}  // namespace net
}  // namespace ldb

#endif  // LAMBDADB_NET_CLIENT_H_
