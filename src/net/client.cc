#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/net/net_util.h"
#include "src/runtime/serialize.h"

namespace ldb {
namespace net {

Client::~Client() {
  try {
    Close();
  } catch (...) {
    // Destructor: the socket is closed either way.
  }
}

void Client::Connect(const std::string& host, uint16_t port,
                     const HelloRequest& hello, int recv_timeout_ms) {
  if (fd_ >= 0) throw Error("client already connected");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw Error("bad server address (IPv4 literal expected): " + host);
  }

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw Error(std::string("socket: ") + ErrnoMessage(errno));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string msg = std::string("connect ") + ip + ":" +
                      std::to_string(port) + ": " + ErrnoMessage(errno);
    ::close(fd);
    throw Error(msg);
  }
  fd_ = fd;
  decoder_.Reset();

  try {
    SendRaw(hello.Encode());
    Frame f = Await(Opcode::kHelloOk);
    hello_ = HelloReply::Parse(f.payload);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

void Client::Close() {
  if (fd_ < 0) return;
  try {
    SendFrame(Opcode::kGoodbye, std::string());
    // Drain whatever precedes the GOODBYE_OK (stray CANCEL_OKs etc.).
    for (int i = 0; i < 64; ++i) {
      Frame f = ReadFrame();
      if (f.opcode == Opcode::kGoodbyeOk) break;
    }
  } catch (...) {
    // Best effort; fall through to close.
  }
  ::close(fd_);
  fd_ = -1;
}

void Client::SendRaw(const std::string& bytes) {
  MutexLock lock(&send_mu_);
  if (fd_ < 0) throw Error("client not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw Error(std::string("send: ") + ErrnoMessage(errno));
  }
}

void Client::SendFrame(Opcode op, const std::string& payload) {
  SendRaw(EncodeFrame(op, payload));
}

Frame Client::ReadFrame() {
  if (fd_ < 0) throw Error("client not connected");
  Frame f;
  char buf[65536];
  while (!decoder_.Next(&f)) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) throw Error("server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw Error("client receive timeout");
    }
    throw Error(std::string("recv: ") + ErrnoMessage(errno));
  }
  return f;
}

Frame Client::Await(Opcode expected) {
  for (;;) {
    Frame f = ReadFrame();
    if (f.opcode == expected) return f;
    if (f.opcode == Opcode::kCancelOk) continue;  // out-of-band ack
    if (f.opcode == Opcode::kError) {
      ErrorReply err = ErrorReply::Parse(f.payload);
      throw RemoteError(err.code, err.message);
    }
    throw WireError(std::string("expected ") + OpcodeName(expected) +
                    ", got " + OpcodeName(f.opcode));
  }
}

uint64_t Client::Prepare(const std::string& oql) {
  PrepareRequest req;
  req.oql = oql;
  SendRaw(req.Encode());
  return PrepareReply::Parse(Await(Opcode::kPrepareOk).payload).handle;
}

void Client::Bind(const std::vector<std::pair<std::string, Value>>& params,
                  bool clear_first) {
  BindRequest req;
  req.clear_first = clear_first ? 1 : 0;
  for (const auto& [name, v] : params) req.Add(name, v);
  SendRaw(req.Encode());
  Await(Opcode::kBindOk);
}

ClientResult Client::RunExecute(const ExecuteRequest& req) {
  SendRaw(req.Encode());
  ClientResult out;
  out.exec = ExecReply::Parse(Await(Opcode::kExecOk).payload);
  last_trace_id_ =
      out.exec.trace_id != 0 ? out.exec.trace_id : req.trace_id;

  // The server appends one ROWS batch when fetch_hint > 0 (even if empty);
  // keep FETCHing until has_more says the cursor is drained.
  bool expect_rows = req.fetch_hint > 0;
  bool more = true;
  while (more) {
    if (!expect_rows) {
      FetchRequest fetch;
      fetch.max_rows = req.fetch_hint;
      SendRaw(fetch.Encode());
    }
    expect_rows = false;
    RowsReply batch = RowsReply::Parse(Await(Opcode::kRows).payload);
    for (const std::string& text : batch.rows) {
      out.rows.push_back(ValueFromText(text));
    }
    more = batch.has_more != 0;
  }
  return out;
}

ClientResult Client::Execute(const std::string& oql, uint64_t deadline_ms,
                             uint32_t fetch_batch) {
  ExecuteRequest req;
  req.mode = ExecuteRequest::kAdhoc;
  req.oql = oql;
  req.deadline_ms = deadline_ms;
  req.fetch_hint = fetch_batch != 0 ? fetch_batch : 1024;
  if (trace_requests_) {
    req.trace_id = obs::MintTraceId();
    req.trace_flags = trace_flags_;
  }
  return RunExecute(req);
}

ClientResult Client::ExecutePrepared(uint64_t handle, uint64_t deadline_ms,
                                     uint32_t fetch_batch) {
  ExecuteRequest req;
  req.mode = ExecuteRequest::kPrepared;
  req.handle = handle;
  req.deadline_ms = deadline_ms;
  req.fetch_hint = fetch_batch != 0 ? fetch_batch : 1024;
  if (trace_requests_) {
    req.trace_id = obs::MintTraceId();
    req.trace_flags = trace_flags_;
  }
  return RunExecute(req);
}

void Client::Cancel() { SendFrame(Opcode::kCancel, std::string()); }

std::string Client::Introspect(uint8_t kind, uint32_t arg,
                               uint64_t trace_id) {
  IntrospectRequest req;
  req.kind = kind;
  req.arg = arg;
  req.trace_id = trace_id;
  SendRaw(req.Encode());
  IntrospectReply rep =
      IntrospectReply::Parse(Await(Opcode::kIntrospectOk).payload);
  return std::move(rep.json);
}

}  // namespace net
}  // namespace ldb
