#include "src/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/net/net_util.h"
#include "src/obs/introspect.h"
#include "src/obs/resource.h"
#include "src/oql/parser.h"
#include "src/runtime/serialize.h"
#include "src/verify/verify.h"

namespace ldb {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + ErrnoMessage(errno);
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Maps the structured error taxonomy onto wire error codes. Ordered from
/// most to least derived: QueryMemoryExceeded subclasses EvalError, every
/// service error subclasses Error.
ErrorCode CodeForError(const Error& e) {
  if (dynamic_cast<const WireError*>(&e) != nullptr) return ErrorCode::kProtocol;
  if (dynamic_cast<const AdmissionError*>(&e) != nullptr) {
    return ErrorCode::kAdmission;
  }
  if (dynamic_cast<const QueryCancelled*>(&e) != nullptr) {
    return ErrorCode::kCancelled;
  }
  if (dynamic_cast<const obs::QueryMemoryExceeded*>(&e) != nullptr) {
    return ErrorCode::kOverBudget;
  }
  if (dynamic_cast<const VerifyError*>(&e) != nullptr) return ErrorCode::kVerify;
  if (dynamic_cast<const ParseError*>(&e) != nullptr) return ErrorCode::kParse;
  if (dynamic_cast<const TypeError*>(&e) != nullptr) return ErrorCode::kType;
  if (dynamic_cast<const UnsupportedError*>(&e) != nullptr) {
    return ErrorCode::kUnsupported;
  }
  if (dynamic_cast<const InternalError*>(&e) != nullptr) {
    return ErrorCode::kInternal;
  }
  if (dynamic_cast<const EvalError*>(&e) != nullptr) return ErrorCode::kEval;
  return ErrorCode::kInternal;
}

}  // namespace

/// Per-connection state. The IO thread owns the socket, decoder, and epoll
/// mask; one worker at a time (guarded by `busy`) owns the request-handling
/// fields; the mutexes cover the handoff points.
struct Server::Conn {
  explicit Conn(uint32_t max_frame_bytes) : decoder(max_frame_bytes) {}

  // IO thread only.
  int fd = -1;
  std::string peer;
  FrameDecoder decoder;
  uint32_t events = 0;  ///< current epoll interest mask

  /// Orderly close: stop reading, close once the outbox drains and no frame
  /// is pending or being processed. Set by either thread.
  std::atomic<bool> close_after_flush{false};

  /// One decoded frame plus the moment the IO thread read it off the socket
  /// — the trace origin; DoExecute's queue_wait_ms is measured from it.
  struct PendingFrame {
    Frame frame;
    Clock::time_point recv;
  };

  /// Guards the IO-thread/worker handoff state.
  Mutex mu;
  std::deque<PendingFrame> pending LDB_GUARDED_BY(mu);
  bool busy LDB_GUARDED_BY(mu) = false;    ///< a worker is processing this
  bool closed LDB_GUARDED_BY(mu) = false;  ///< socket gone; workers drop
                                           ///< remaining frames
  std::shared_ptr<Session> session LDB_GUARDED_BY(mu);

  /// Guards the outbox. Workers append; the IO thread flushes.
  Mutex out_mu;
  std::string out LDB_GUARDED_BY(out_mu);
  size_t out_off LDB_GUARDED_BY(out_mu) = 0;

  // Worker-only state, deliberately NOT guarded: exactly one worker holds
  // the connection at a time (the `busy` flag is set/cleared under `mu`,
  // whose acquire/release edges order these fields between workers).
  bool hello_done = false;
  std::map<uint64_t, std::string> prepared;  ///< handle -> OQL text
  uint64_t next_handle = 0;
  /// Connection-default trace context from a PREPARE extension: later
  /// EXECUTEs without their own context inherit parent/flags with a fresh
  /// per-query id (valid() gates the inheritance).
  obs::TraceContext default_trace;
  bool has_cursor = false;
  bool cursor_scalar = false;
  Value result;
  size_t next_row = 0;

  size_t OutBytes() LDB_EXCLUDES(out_mu) {
    MutexLock lock(&out_mu);
    return out.size() - out_off;
  }
};

Server::Server(QueryService& svc, ServerOptions options)
    : svc_(svc), options_(std::move(options)) {
  obs::MetricsRegistry& m = svc_.metrics();
  m_conns_open_ = m.GetGauge("ldb_connections_open", "Open client connections");
  m_conns_total_ =
      m.GetCounter("ldb_connections_total", "Client connections accepted");
  m_bytes_sent_ =
      m.GetCounter("ldb_net_bytes_sent_total", "Bytes written to clients");
  m_bytes_recv_ =
      m.GetCounter("ldb_net_bytes_recv_total", "Bytes read from clients");
  m_protocol_errors_ = m.GetCounter("ldb_net_protocol_errors_total",
                                    "Malformed frames and unknown opcodes");
  for (Opcode op : {Opcode::kHello, Opcode::kPrepare, Opcode::kBind,
                    Opcode::kExecute, Opcode::kFetch, Opcode::kCancel,
                    Opcode::kGoodbye, Opcode::kIntrospect}) {
    m_frames_[static_cast<uint8_t>(op)] =
        m.GetCounter("ldb_net_frames_total", "Frames received by type",
                     {{"op", OpcodeName(op)}});
  }
}

Server::~Server() { Shutdown(); }

void Server::Start() {
  if (started_.exchange(true)) {
    throw InternalError("Server::Start called twice");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw Error(ErrnoString("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::string msg = ErrnoString("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(msg + " (" + options_.host + ":" +
                std::to_string(options_.port) + ")");
  }
  if (::listen(listen_fd_, 128) != 0) {
    std::string msg = ErrnoString("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(msg);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) throw Error(ErrnoString("epoll/eventfd"));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  int n_workers = options_.n_workers > 0 ? options_.n_workers : 1;
  workers_.reserve(n_workers);
  for (int i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });
}

void Server::Shutdown() {
  if (!started_.load()) return;
  MutexLock lock(&shutdown_mu_);
  if (stopped_.load()) return;
  stopping_.store(true);
  uint64_t one = 1;
  if (wake_fd_ >= 0) {
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
  if (io_thread_.joinable()) io_thread_.join();
  {
    MutexLock qlock(&queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  wake_fd_ = epoll_fd_ = listen_fd_ = -1;
  stopped_.store(true);
}

ServerStats Server::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

// -- IO thread ----------------------------------------------------------------

void Server::IoLoop() {
  using clock = std::chrono::steady_clock;
  std::vector<epoll_event> events(64);
  clock::time_point drain_start{};
  bool draining = false;
  bool cancelled_all = false;

  for (;;) {
    if (stopping_.load() && !draining) {
      draining = true;
      drain_start = clock::now();
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Stop reading everywhere; whatever is already decoded still runs.
      for (auto& [fd, c] : conns_) UpdateInterest(c);
    }
    if (draining) {
      if (AllConnsIdle()) break;
      double elapsed_ms = std::chrono::duration<double, std::milli>(
                              clock::now() - drain_start)
                              .count();
      if (!cancelled_all && elapsed_ms >= options_.drain_timeout_ms) {
        CancelAllSessions();
        cancelled_all = true;
      }
      if (elapsed_ms >= 2.0 * options_.drain_timeout_ms) break;
    }

    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()),
                         draining ? 20 : 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptAll();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t junk;
        while (::read(wake_fd_, &junk, sizeof(junk)) == sizeof(junk)) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> c = it->second;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(c);
        continue;
      }
      if ((ev & EPOLLOUT) != 0) HandleWritable(c);
      if ((ev & EPOLLIN) != 0 && c->fd >= 0) HandleReadable(c);
    }

    // Outboxes touched by workers since the last pass.
    std::vector<std::weak_ptr<Conn>> dirty;
    {
      MutexLock lock(&dirty_mu_);
      dirty.swap(dirty_);
    }
    for (std::weak_ptr<Conn>& w : dirty) {
      if (std::shared_ptr<Conn> c = w.lock()) {
        if (c->fd >= 0) {
          FlushOutbox(c);
          if (c->fd >= 0) UpdateInterest(c);
        }
      }
    }
  }

  // Drained (or drain deadline exceeded): tear down what remains.
  std::vector<std::shared_ptr<Conn>> rest;
  rest.reserve(conns_.size());
  for (auto& [fd, c] : conns_) rest.push_back(c);
  for (const std::shared_ptr<Conn>& c : rest) CloseConn(c);
  conns_.clear();
}

void Server::AcceptAll() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: back to epoll
    }
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto c = std::make_shared<Conn>(options_.max_frame_bytes);
    c->fd = fd;
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
    c->peer = std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
    c->events = EPOLLIN;

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_[fd] = std::move(c);

    {
      MutexLock lock(&stats_mu_);
      ++stats_.connections_total;
      ++stats_.connections_open;
    }
    m_conns_total_->Inc();
    m_conns_open_->Add(1);
  }
}

void Server::HandleReadable(const std::shared_ptr<Conn>& c) {
  char buf[65536];
  bool throttle = false;
  while (!throttle) {
    ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      CloseConn(c);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(c);
      return;
    }
    {
      MutexLock lock(&stats_mu_);
      stats_.bytes_recv += static_cast<uint64_t>(n);
    }
    m_bytes_recv_->Inc(static_cast<uint64_t>(n));
    c->decoder.Feed(buf, static_cast<size_t>(n));

    try {
      Frame f;
      while (c->decoder.Next(&f)) {
        {
          MutexLock lock(&stats_mu_);
          ++stats_.frames_received;
        }
        OnFrame(c, std::move(f));
        if (c->fd < 0) return;
        size_t pending;
        {
          MutexLock lock(&c->mu);
          pending = c->pending.size();
        }
        if (pending >= options_.max_pipeline ||
            c->OutBytes() > options_.outbox_limit_bytes) {
          throttle = true;  // stop reading; UpdateInterest drops EPOLLIN
          break;
        }
      }
    } catch (const WireError& e) {
      // Bad length prefix: the decoder is poisoned; report and close once
      // the error frame is flushed.
      {
        MutexLock lock(&stats_mu_);
        ++stats_.protocol_errors;
      }
      m_protocol_errors_->Inc();
      ErrorReply err;
      err.code = ErrorCode::kProtocol;
      err.message = e.what();
      EnqueueReply(c, err.Encode());
      c->close_after_flush.store(true);
      break;
    }
  }
  FlushOutbox(c);
  if (c->fd >= 0) UpdateInterest(c);
}

void Server::HandleWritable(const std::shared_ptr<Conn>& c) {
  FlushOutbox(c);
  if (c->fd >= 0) UpdateInterest(c);
}

void Server::FlushOutbox(const std::shared_ptr<Conn>& c) {
  if (c->fd < 0) return;
  uint64_t sent = 0;
  bool dead = false;
  bool empty;
  {
    MutexLock lock(&c->out_mu);
    while (c->out_off < c->out.size()) {
      ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                         c->out.size() - c->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c->out_off += static_cast<size_t>(n);
        sent += static_cast<uint64_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      dead = true;
      break;
    }
    empty = c->out_off >= c->out.size();
    if (empty) {
      c->out.clear();
      c->out_off = 0;
    }
  }
  if (sent > 0) {
    MutexLock lock(&stats_mu_);
    stats_.bytes_sent += sent;
  }
  if (sent > 0) m_bytes_sent_->Inc(sent);
  if (dead) {
    CloseConn(c);
    return;
  }
  if (empty && c->close_after_flush.load()) {
    bool idle;
    {
      MutexLock lock(&c->mu);
      idle = !c->busy && c->pending.empty();
    }
    if (idle) CloseConn(c);
  }
}

void Server::UpdateInterest(const std::shared_ptr<Conn>& c) {
  if (c->fd < 0) return;
  size_t pending;
  {
    MutexLock lock(&c->mu);
    pending = c->pending.size();
  }
  size_t out_bytes = c->OutBytes();
  bool want_write = out_bytes > 0;
  bool want_read = !c->close_after_flush.load() && !c->decoder.error() &&
                   !stopping_.load() && pending < options_.max_pipeline &&
                   out_bytes <= options_.outbox_limit_bytes;
  uint32_t mask =
      (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  if (mask != c->events) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.fd = c->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
    c->events = mask;
  }
}

void Server::CloseConn(const std::shared_ptr<Conn>& c) {
  if (c->fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  conns_.erase(c->fd);
  c->fd = -1;
  std::shared_ptr<Session> session;
  {
    MutexLock lock(&c->mu);
    c->closed = true;
    c->pending.clear();
    session = c->session;
  }
  // A vanished client aborts whatever its session is running.
  if (session != nullptr) session->Cancel();
  {
    MutexLock lock(&stats_mu_);
    --stats_.connections_open;
  }
  m_conns_open_->Add(-1);
}

void Server::OnFrame(const std::shared_ptr<Conn>& c, Frame frame) {
  auto mit = m_frames_.find(static_cast<uint8_t>(frame.opcode));
  if (mit != m_frames_.end()) mit->second->Inc();

  switch (frame.opcode) {
    case Opcode::kCancel: {
      // Out-of-band on purpose: the IO thread applies the cancel so it is
      // not stuck in line behind the very query it aborts.
      std::shared_ptr<Session> session;
      {
        MutexLock lock(&c->mu);
        session = c->session;
      }
      if (session != nullptr) session->Cancel();
      EnqueueReply(c, EncodeFrame(Opcode::kCancelOk, std::string()));
      return;
    }
    case Opcode::kHello:
    case Opcode::kPrepare:
    case Opcode::kBind:
    case Opcode::kExecute:
    case Opcode::kFetch:
    case Opcode::kIntrospect:
    case Opcode::kGoodbye: {
      bool schedule = false;
      {
        MutexLock lock(&c->mu);
        c->pending.push_back(Conn::PendingFrame{std::move(frame), Clock::now()});
        if (!c->busy) {
          c->busy = true;
          schedule = true;
        }
      }
      if (schedule) ScheduleConn(c);
      return;
    }
    default: {
      // Unknown opcode: an error frame, not a connection drop.
      {
        MutexLock lock(&stats_mu_);
        ++stats_.protocol_errors;
      }
      m_protocol_errors_->Inc();
      ErrorReply err;
      err.code = ErrorCode::kProtocol;
      err.message = std::string("unknown opcode ") + OpcodeName(frame.opcode);
      EnqueueReply(c, err.Encode());
      return;
    }
  }
}

bool Server::AllConnsIdle() {
  for (auto& [fd, c] : conns_) {
    {
      MutexLock lock(&c->mu);
      if (c->busy || !c->pending.empty()) return false;
    }
    if (c->OutBytes() > 0) return false;
  }
  return true;
}

void Server::CancelAllSessions() {
  for (auto& [fd, c] : conns_) {
    std::shared_ptr<Session> session;
    {
      MutexLock lock(&c->mu);
      session = c->session;
    }
    if (session != nullptr) session->Cancel();
  }
}

// -- worker side --------------------------------------------------------------

void Server::ScheduleConn(const std::shared_ptr<Conn>& c) {
  {
    MutexLock lock(&queue_mu_);
    queue_.push_back(c);
  }
  queue_cv_.NotifyOne();
}

void Server::NotifyIo(const std::shared_ptr<Conn>& c) {
  {
    MutexLock lock(&dirty_mu_);
    dirty_.push_back(c);
  }
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void Server::EnqueueReply(const std::shared_ptr<Conn>& c, std::string bytes) {
  {
    MutexLock lock(&c->out_mu);
    c->out += bytes;
  }
  NotifyIo(c);
}

void Server::EnqueueError(const std::shared_ptr<Conn>& c, ErrorCode code,
                          const std::string& message) {
  ErrorReply err;
  err.code = code;
  err.message = message;
  EnqueueReply(c, err.Encode());
}

void Server::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Conn> c;
    {
      MutexLock lock(&queue_mu_);
      while (!workers_stop_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // workers_stop_ and nothing left
      c = std::move(queue_.front());
      queue_.pop_front();
    }
    for (;;) {
      Conn::PendingFrame f;
      {
        MutexLock lock(&c->mu);
        if (c->closed) c->pending.clear();
        if (c->pending.empty()) {
          c->busy = false;
          break;
        }
        f = std::move(c->pending.front());
        c->pending.pop_front();
      }
      ProcessFrame(c, f.frame, f.recv);
    }
    NotifyIo(c);  // pending drained: flush replies, maybe re-enable reads
  }
}

void Server::ProcessFrame(const std::shared_ptr<Conn>& c, const Frame& frame,
                          Clock::time_point recv) {
  try {
    if (!c->hello_done && frame.opcode != Opcode::kHello) {
      EnqueueError(c, ErrorCode::kProtocol, "HELLO must be the first frame");
      c->close_after_flush.store(true);
      return;
    }
    switch (frame.opcode) {
      case Opcode::kHello:
        DoHello(c, frame);
        break;
      case Opcode::kPrepare:
        DoPrepare(c, frame);
        break;
      case Opcode::kBind:
        DoBind(c, frame);
        break;
      case Opcode::kExecute:
        DoExecute(c, frame, recv);
        break;
      case Opcode::kFetch:
        DoFetch(c, frame);
        break;
      case Opcode::kIntrospect:
        DoIntrospect(c, frame);
        break;
      case Opcode::kGoodbye:
        EnqueueReply(c, EncodeFrame(Opcode::kGoodbyeOk, std::string()));
        c->close_after_flush.store(true);
        break;
      default:
        EnqueueError(c, ErrorCode::kProtocol,
                     std::string("unexpected opcode ") +
                         OpcodeName(frame.opcode));
        break;
    }
  } catch (const Error& e) {
    EnqueueError(c, CodeForError(e), e.what());
  } catch (const std::exception& e) {
    EnqueueError(c, ErrorCode::kInternal, e.what());
  }
}

void Server::DoHello(const std::shared_ptr<Conn>& c, const Frame& f) {
  HelloRequest req = HelloRequest::Parse(f.payload);
  if (c->hello_done) {
    EnqueueError(c, ErrorCode::kProtocol, "duplicate HELLO");
    return;
  }
  if (req.version == 0) {
    EnqueueError(c, ErrorCode::kProtocol, "client protocol version 0");
    c->close_after_flush.store(true);
    return;
  }

  SessionOptions so = options_.session;
  if (req.deadline_ms != 0) {
    so.deadline_ms = static_cast<int64_t>(req.deadline_ms);
  }
  if (req.memory_budget_bytes != 0) {
    so.memory_budget_bytes = static_cast<size_t>(req.memory_budget_bytes);
  }
  if (req.n_threads != 0) so.n_threads = static_cast<int>(req.n_threads);
  if (req.morsel_size != 0) so.morsel_size = req.morsel_size;
  so.use_slot_frames = req.use_slot_frames != 0;

  std::shared_ptr<Session> session = svc_.OpenSession(so);
  session->set_peer(c->peer);
  {
    MutexLock lock(&c->mu);
    c->session = session;
  }
  c->hello_done = true;

  HelloReply rep;
  rep.version = std::min(req.version, kProtocolVersion);
  rep.session_id = session->id();
  rep.server_info = "lambdadb ldb_server (wire v" +
                    std::to_string(kProtocolVersion) + ")";
  EnqueueReply(c, rep.Encode());
}

void Server::DoPrepare(const std::shared_ptr<Conn>& c, const Frame& f) {
  PrepareRequest req = PrepareRequest::Parse(f.payload);
  // Parse eagerly so syntax errors surface at PREPARE time; compilation is
  // deferred to execution and shared through the service plan cache.
  oql::Parse(req.oql);
  uint64_t handle = ++c->next_handle;
  c->prepared[handle] = req.oql;
  if (req.trace_id != 0) {
    c->default_trace.trace_id = req.trace_id;
    c->default_trace.parent_span_id = req.parent_span_id;
    c->default_trace.flags = req.trace_flags;
  }
  PrepareReply rep;
  rep.handle = handle;
  EnqueueReply(c, rep.Encode());
}

void Server::DoBind(const std::shared_ptr<Conn>& c, const Frame& f) {
  BindRequest req = BindRequest::Parse(f.payload);
  std::shared_ptr<Session> session;
  {
    MutexLock lock(&c->mu);
    session = c->session;
  }
  if (req.clear_first != 0) session->ClearBindings();
  for (const auto& [name, text] : req.params) {
    session->Bind(name, ValueFromText(text));
  }
  EnqueueReply(c, EncodeFrame(Opcode::kBindOk, std::string()));
}

void Server::DoExecute(const std::shared_ptr<Conn>& c, const Frame& f,
                       Clock::time_point recv) {
  ExecuteRequest req = ExecuteRequest::Parse(f.payload);
  if (stopping_.load()) {
    EnqueueError(c, ErrorCode::kShuttingDown, "server is draining");
    return;
  }
  std::string oql;
  if (req.mode == ExecuteRequest::kPrepared) {
    auto it = c->prepared.find(req.handle);
    if (it == c->prepared.end()) {
      EnqueueError(c, ErrorCode::kState,
                   "unknown prepared-statement handle " +
                       std::to_string(req.handle));
      return;
    }
    oql = it->second;
  } else {
    oql = std::move(req.oql);
  }

  std::shared_ptr<Session> session;
  {
    MutexLock lock(&c->mu);
    session = c->session;
  }

  // A new execute invalidates the previous cursor either way.
  c->has_cursor = false;
  c->result = Value();
  c->next_row = 0;

  int64_t saved_deadline = session->options().deadline_ms;
  if (req.deadline_ms != 0) {
    session->options().deadline_ms = static_cast<int64_t>(req.deadline_ms);
  }

  // The request's own trace context, else the connection default from
  // PREPARE (fresh id per query). Set on the session even when empty: the
  // pre-wait (wire read -> here) feeds queue_wait_ms either way, and the
  // service mints an id itself for tail sampling.
  obs::TraceContext tctx;
  tctx.trace_id = req.trace_id;
  tctx.parent_span_id = req.parent_span_id;
  tctx.flags = req.trace_flags;
  if (!tctx.valid() && c->default_trace.valid()) {
    tctx.trace_id = obs::MintTraceId();
    tctx.parent_span_id = c->default_trace.parent_span_id;
    tctx.flags = c->default_trace.flags;
  }
  session->set_trace(tctx, MsBetween(recv, Clock::now()));

  QueryStats stats;
  Value result;
  try {
    result = svc_.Execute(*session, oql, &stats);
  } catch (...) {
    session->options().deadline_ms = saved_deadline;
    throw;
  }
  session->options().deadline_ms = saved_deadline;

  c->result = std::move(result);
  c->cursor_scalar = !c->result.is_collection();
  c->next_row = 0;
  c->has_cursor = true;

  ExecReply rep;
  rep.rows = c->cursor_scalar
                 ? 1
                 : static_cast<uint64_t>(c->result.AsElems().size());
  rep.scalar = c->cursor_scalar ? 1 : 0;
  rep.plan_cached = stats.plan_cached ? 1 : 0;
  rep.queue_ms = stats.queue_ms;
  rep.compile_ms = stats.compile_ms;
  rep.exec_ms = stats.exec_ms;
  rep.queue_wait_ms = stats.queue_wait_ms;
  rep.trace_id = stats.trace_id;

  if (req.fetch_hint > 0 && c->has_cursor) {
    // Serialize the immediate batch BEFORE encoding EXEC_OK so its timing
    // rides the reply (and lands in the query log + trace post-hoc); the
    // frames still go out in EXEC_OK-then-ROWS order.
    Clock::time_point ser0 = Clock::now();
    std::string batch = NextBatch(c, req.fetch_hint);
    rep.serialize_ms = MsBetween(ser0, Clock::now());
    svc_.RecordSerialize(stats.log_id, stats.trace_id, MsBetween(recv, ser0),
                         rep.serialize_ms);
    EnqueueReply(c, rep.Encode());
    EnqueueReply(c, std::move(batch));
  } else {
    EnqueueReply(c, rep.Encode());
  }
}

void Server::DoFetch(const std::shared_ptr<Conn>& c, const Frame& f) {
  FetchRequest req = FetchRequest::Parse(f.payload);
  if (!c->has_cursor) {
    EnqueueError(c, ErrorCode::kState, "FETCH with no pending result");
    return;
  }
  uint32_t n = req.max_rows != 0 ? req.max_rows : options_.default_batch_rows;
  EnqueueReply(c, NextBatch(c, n));
}

void Server::DoIntrospect(const std::shared_ptr<Conn>& c, const Frame& f) {
  IntrospectRequest req = IntrospectRequest::Parse(f.payload);
  IntrospectReply rep;
  rep.kind = req.kind;
  switch (req.kind) {
    case IntrospectRequest::kMetrics:
      rep.json = svc_.metrics().Snapshot().ToJson();
      break;
    case IntrospectRequest::kActiveQueries:
      rep.json = obs::ActiveQueriesToJson(svc_.ActiveQueries());
      break;
    case IntrospectRequest::kQueryLog: {
      size_t n = req.arg != 0 ? req.arg : 32;
      rep.json = obs::QueryLogToJson(svc_.query_log().Tail(n));
      break;
    }
    case IntrospectRequest::kTrace: {
      obs::RequestTrace t;
      if (!svc_.trace_ring().Find(req.trace_id, &t)) {
        EnqueueError(c, ErrorCode::kState,
                     req.trace_id == 0
                         ? "trace ring is empty"
                         : "trace " + obs::TraceIdHex(req.trace_id) +
                               " is not in the ring (sampled out or evicted)");
        return;
      }
      rep.json = obs::TraceToChromeJson(t);
      break;
    }
    default:
      EnqueueError(c, ErrorCode::kState,
                   "unknown INTROSPECT kind " + std::to_string(req.kind));
      return;
  }
  EnqueueReply(c, rep.Encode());
}

std::string Server::NextBatch(const std::shared_ptr<Conn>& c,
                              uint32_t max_rows) {
  RowsReply rep;
  size_t total;
  if (c->cursor_scalar) {
    total = 1;
    if (c->next_row == 0 && max_rows > 0) {
      rep.rows.push_back(ValueToText(c->result));
      c->next_row = 1;
    }
  } else {
    const Elems& elems = c->result.AsElems();
    total = elems.size();
    size_t batch_bytes = 0;
    while (c->next_row < total && rep.rows.size() < max_rows &&
           batch_bytes < options_.batch_limit_bytes) {
      std::string text = ValueToText(elems[c->next_row]);
      ++c->next_row;
      batch_bytes += text.size() + 8;
      rep.rows.push_back(std::move(text));
    }
  }
  rep.has_more = c->next_row < total ? 1 : 0;
  if (rep.has_more == 0) {
    // Cursor exhausted: release the result now rather than at the next
    // EXECUTE, so a drained large result stops holding memory.
    c->has_cursor = false;
    c->result = Value();
    c->next_row = 0;
  }
  return rep.Encode();
}

}  // namespace net
}  // namespace ldb
