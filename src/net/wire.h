// The ldb wire protocol: length-prefixed binary frames between a client and
// an ldb_server (docs/WIRE.md is the normative spec).
//
// Frame layout (all integers little-endian):
//
//   u32 length   -- bytes that follow the length field (opcode + payload)
//   u8  opcode   -- Opcode below
//   ...payload   -- length - 1 bytes, opcode-specific
//
// The decoder enforces kMaxFrameBytes *before* allocating a payload buffer,
// so a garbage or hostile length prefix costs nothing and poisons only the
// connection that sent it. Payload parsers read fixed fields front-to-back
// and IGNORE trailing bytes — that is the versioning rule: a newer peer may
// append fields to any payload without breaking an older one. Unknown
// opcodes are answered with ERROR/kProtocol, not a connection drop.
//
// Parameter values and result rows travel in the database dump's value
// syntax (src/runtime/serialize.h: ValueToText/ValueFromText), which is
// self-delimiting and round-trips every runtime value exactly.
//
// Everything in this header is pure data transformation — no sockets — so
// the framing and every message codec are unit-testable byte-for-byte
// (tests/net_test.cc feeds the decoder one byte at a time).

#ifndef LAMBDADB_NET_WIRE_H_
#define LAMBDADB_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/error.h"
#include "src/runtime/value.h"

namespace ldb {
namespace net {

/// Protocol version spoken by this build. HELLO negotiates
/// min(client, server). v2 added the INTROSPECT opcode and the trailing
/// trace-context / timing extensions on EXECUTE, PREPARE, and EXEC_OK —
/// the extensions themselves are plain trailing bytes (a v1 peer ignores
/// them); the version exists so a client knows whether INTROSPECT is
/// answerable before sending it.
constexpr uint32_t kProtocolVersion = 2;

/// Hard ceiling on `length` (opcode + payload). The decoder rejects a larger
/// prefix before allocating anything; the encoder refuses to build one.
constexpr uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB

enum class Opcode : uint8_t {
  // client -> server
  kHello = 0x01,    ///< version + session options; must be the first frame
  kPrepare = 0x02,  ///< OQL text -> connection-local statement handle
  kBind = 0x03,     ///< parameter bindings for subsequent executes
  kExecute = 0x04,  ///< run ad-hoc OQL or a prepared handle
  kFetch = 0x05,    ///< next batch of rows from the connection's cursor
  kCancel = 0x06,   ///< abort the in-flight query (handled out-of-band)
  kGoodbye = 0x07,  ///< orderly close
  kIntrospect = 0x08,  ///< v2: remote observability snapshot (metrics /
                       ///< active queries / query-log tail / trace-by-id)

  // server -> client
  kHelloOk = 0x81,
  kPrepareOk = 0x82,
  kBindOk = 0x83,
  kExecOk = 0x84,
  kRows = 0x85,
  kCancelOk = 0x86,
  kGoodbyeOk = 0x87,
  kIntrospectOk = 0x88,
  kError = 0x8F,
};

/// Human-readable opcode name ("HELLO", "EXECUTE", ...); "OP_xx" for
/// unknown bytes. Used for the per-frame-type request counters.
const char* OpcodeName(Opcode op);

/// Error codes carried by ERROR frames — the wire projection of the
/// structured error taxonomy (src/runtime/error.h and friends).
enum class ErrorCode : uint16_t {
  kProtocol = 1,      ///< malformed frame, bad opcode, bad sequencing
  kParse = 2,         ///< ldb::ParseError
  kType = 3,          ///< ldb::TypeError
  kUnsupported = 4,   ///< ldb::UnsupportedError
  kEval = 5,          ///< ldb::EvalError (and unclassified runtime errors)
  kCancelled = 6,     ///< ldb::QueryCancelled (explicit cancel or deadline)
  kAdmission = 7,     ///< ldb::AdmissionError (admission queue full)
  kOverBudget = 8,    ///< ldb::obs::QueryMemoryExceeded
  kVerify = 9,        ///< ldb::VerifyError (static plan verifier rejection)
  kInternal = 10,     ///< ldb::InternalError / unexpected exceptions
  kShuttingDown = 11, ///< server is draining; no new work accepted
  kState = 12,        ///< unknown handle, FETCH without a result, ...
};

const char* ErrorCodeName(ErrorCode code);

/// A decoded frame: opcode plus raw payload bytes.
struct Frame {
  Opcode opcode = Opcode::kError;
  std::string payload;
};

/// Thrown by payload parsers (and the client) on malformed or unexpected
/// frames. Server-side it is answered with ERROR/kProtocol.
class WireError : public Error {
 public:
  explicit WireError(const std::string& msg) : Error("wire: " + msg) {}
};

// -- framing ------------------------------------------------------------------

/// Serializes one frame (length prefix + opcode + payload). Throws WireError
/// if the frame would exceed kMaxFrameBytes.
std::string EncodeFrame(Opcode op, const std::string& payload);

/// Incremental frame decoder. Feed() appends raw bytes; Next() extracts the
/// earliest complete frame. Handles torn reads of any granularity (down to
/// one byte at a time). A length prefix of zero or above kMaxFrameBytes puts
/// the decoder into a permanent error state — the connection is poisoned and
/// must be closed — *without* allocating the bogus length.
class FrameDecoder {
 public:
  /// `max_frame_bytes` can tighten (never loosen) the global ceiling.
  explicit FrameDecoder(uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_(max_frame_bytes < kMaxFrameBytes ? max_frame_bytes
                                                    : kMaxFrameBytes) {}

  void Feed(const char* data, size_t n);
  void Feed(const std::string& bytes) { Feed(bytes.data(), bytes.size()); }

  /// True if a complete frame was extracted into *out. False if more bytes
  /// are needed. Throws WireError (and latches error()) on a bad length.
  bool Next(Frame* out);

  bool error() const { return error_; }
  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

  /// Drops buffered bytes and clears the error latch (fresh connection).
  void Reset() {
    buf_.clear();
    pos_ = 0;
    error_ = false;
  }

 private:
  const uint32_t max_frame_;
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_ (compacted lazily)
  bool error_ = false;
};

// -- payload primitives -------------------------------------------------------

/// Append-only payload builder (little-endian fixed ints, u32-length-prefixed
/// strings, doubles as IEEE bit patterns).
class PayloadWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  void Str(const std::string& s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Front-to-back payload reader. Every accessor throws WireError on
/// truncation; trailing unread bytes are legal (versioning rule).
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : p_(payload) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  double F64();
  std::string Str();

  size_t remaining() const { return p_.size() - pos_; }

 private:
  const char* Need(size_t n);
  const std::string& p_;
  size_t pos_ = 0;
};

// -- messages -----------------------------------------------------------------
//
// Each message has Encode() returning a full frame and a Parse(payload)
// factory throwing WireError on malformed input. Fields appear on the wire
// in declaration order.

/// HELLO: protocol version + the session options the connection wants.
/// Zero-valued options keep the server's defaults.
struct HelloRequest {
  uint32_t version = kProtocolVersion;
  uint64_t deadline_ms = 0;          ///< per-query deadline (0 = default)
  uint64_t memory_budget_bytes = 0;  ///< per-query budget (0 = default)
  uint32_t n_threads = 0;            ///< engine threads (0 = default)
  uint32_t morsel_size = 0;          ///< morsel rows (0 = default)
  uint8_t use_slot_frames = 1;       ///< engine choice (1 = slot engine)

  std::string Encode() const;
  static HelloRequest Parse(const std::string& payload);
};

struct HelloReply {
  uint32_t version = kProtocolVersion;  ///< negotiated: min(client, server)
  uint64_t session_id = 0;
  std::string server_info;  ///< free-form build/version string

  std::string Encode() const;
  static HelloReply Parse(const std::string& payload);
};

struct PrepareRequest {
  std::string oql;
  /// v2 trailing trace-context extension, same layout as ExecuteRequest's.
  /// A context sent on PREPARE becomes the connection's default: later
  /// EXECUTEs without their own context inherit it (fresh ids are still
  /// minted per query server-side; only parent/flags carry over).
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  uint8_t trace_flags = 0;

  std::string Encode() const;
  static PrepareRequest Parse(const std::string& payload);
};

struct PrepareReply {
  uint64_t handle = 0;  ///< connection-local; valid until the conn closes

  std::string Encode() const;
  static PrepareReply Parse(const std::string& payload);
};

/// BIND: parameter values for the connection's session. `$1` binds name "1".
/// Values travel in the dump text encoding (ValueToText).
struct BindRequest {
  uint8_t clear_first = 1;  ///< drop existing bindings before applying
  std::vector<std::pair<std::string, std::string>> params;  ///< (name, text)

  std::string Encode() const;
  static BindRequest Parse(const std::string& payload);

  /// Convenience used by clients: encode `v` with ValueToText.
  void Add(const std::string& name, const Value& v);
};

struct ExecuteRequest {
  static constexpr uint8_t kAdhoc = 0;
  static constexpr uint8_t kPrepared = 1;

  uint8_t mode = kAdhoc;
  std::string oql;      ///< kAdhoc only
  uint64_t handle = 0;  ///< kPrepared only
  uint64_t deadline_ms = 0;  ///< per-request override (0 = session setting)
  /// Rows the server may append as an immediate ROWS frame after EXEC_OK
  /// (0 = none; the client then FETCHes explicitly).
  uint32_t fetch_hint = 0;
  /// v2 trailing trace-context extension (docs/WIRE.md): 17 bytes — u64
  /// trace_id, u64 parent_span_id, u8 flags (obs::TraceContext::kForceSample).
  /// trace_id == 0 means untraced; a v1 peer simply never emits the bytes
  /// (Encode omits them when trace_id is 0) and ignores them on receipt.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  uint8_t trace_flags = 0;

  std::string Encode() const;
  static ExecuteRequest Parse(const std::string& payload);
};

struct ExecReply {
  uint64_t rows = 0;       ///< result cardinality (1 for scalar results)
  uint8_t scalar = 0;      ///< 1 when the result is not a collection
  uint8_t plan_cached = 0;
  double queue_ms = 0;
  double compile_ms = 0;
  double exec_ms = 0;
  /// v2 trailing extension: the server-side phase timings a client cannot
  /// measure itself, plus the request's trace id (the INTROSPECT key).
  /// Always emitted by a v2 server; zero when parsed from a v1 peer.
  double queue_wait_ms = 0;  ///< wire-read -> worker pickup
  double serialize_ms = 0;   ///< first ROWS batch serialization (0 when the
                             ///< request asked for no immediate batch)
  uint64_t trace_id = 0;     ///< 0 = server built without tracing

  std::string Encode() const;
  static ExecReply Parse(const std::string& payload);
};

struct FetchRequest {
  uint32_t max_rows = 0;  ///< 0 = server default batch size

  std::string Encode() const;
  static FetchRequest Parse(const std::string& payload);
};

/// ROWS: one batch of the pending result, each row in the dump text
/// encoding. `has_more` tells the client whether another FETCH will yield
/// rows — large results stream as many bounded batches, never one giant
/// response buffer.
struct RowsReply {
  uint8_t has_more = 0;
  std::vector<std::string> rows;

  std::string Encode() const;
  static RowsReply Parse(const std::string& payload);
};

/// INTROSPECT (v2): pull one observability artifact off the server without
/// shelling into the host — the remote twin of oqlsh's local `.metrics` /
/// `.querylog` and the bench harness's in-process snapshots. The reply is a
/// JSON document whose schema depends on `kind`.
struct IntrospectRequest {
  static constexpr uint8_t kMetrics = 0;        ///< MetricsSnapshot::ToJson
  static constexpr uint8_t kActiveQueries = 1;  ///< obs::ActiveQueriesToJson
  static constexpr uint8_t kQueryLog = 2;       ///< obs::QueryLogToJson of the
                                                ///< last `arg` records
  static constexpr uint8_t kTrace = 3;          ///< obs::TraceToChromeJson of
                                                ///< trace `trace_id` (0 = the
                                                ///< slowest kept trace)

  uint8_t kind = kMetrics;
  uint32_t arg = 0;       ///< kQueryLog: tail length (0 = server default)
  uint64_t trace_id = 0;  ///< kTrace: which trace

  std::string Encode() const;
  static IntrospectRequest Parse(const std::string& payload);
};

struct IntrospectReply {
  uint8_t kind = 0;  ///< echoes the request
  std::string json;

  std::string Encode() const;
  static IntrospectReply Parse(const std::string& payload);
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string Encode() const;
  static ErrorReply Parse(const std::string& payload);
};

}  // namespace net
}  // namespace ldb

#endif  // LAMBDADB_NET_WIRE_H_
