// ldb_server's network engine: a non-blocking epoll accept/IO loop feeding a
// worker thread pool, speaking the length-prefixed wire protocol of
// src/net/wire.h over TCP (docs/WIRE.md).
//
// Threading model:
//
//   * ONE IO thread owns every socket: it accepts, reads, decodes frames,
//     and performs all writes. Decoded frames are queued per connection and
//     the connection is handed to the worker pool; CANCEL frames are the
//     exception — the IO thread applies them inline (Session::Cancel is
//     thread-safe), so a cancel overtakes the queries queued in front of it.
//   * N worker threads process one connection at a time, one frame at a
//     time, in arrival order — a connection's requests are serialized (its
//     Session runs one query at a time) while distinct connections execute
//     concurrently. Workers never touch sockets: replies append to the
//     connection's outbox and an eventfd nudges the IO thread to flush.
//
// Backpressure is layered, never a connection drop:
//
//   * per-connection: reading stops (EPOLLIN removed) while the outbox
//     exceeds `outbox_limit_bytes` or more than `max_pipeline` frames are
//     queued — a client that pipelines blindly or refuses to drain results
//     is throttled by TCP flow control;
//   * service-wide: every EXECUTE runs through QueryService's admission
//     gate. Workers blocked in the admission queue ARE the wait queue; once
//     it is full, AdmissionError surfaces to the client as an ERROR frame
//     with code ADMISSION (and ldb_queries_rejected increments) while the
//     connection stays healthy.
//
// Sessions map 1:1 to connections: HELLO opens the session (carrying the
// client's option overrides), the remote "ip:port" flows into the query log
// and ActiveQueries(), and closing the connection cancels whatever that
// session is running.
//
// Shutdown() drains gracefully under a deadline: stop accepting, let
// in-flight and already-queued requests finish, flush outboxes; at
// `drain_timeout_ms` every session is cancelled (queries abort via the
// normal cooperative path and the ERROR frames still go out), and a second
// timeout force-closes whatever remains.

#ifndef LAMBDADB_NET_SERVER_H_
#define LAMBDADB_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/thread_annotations.h"
#include "src/net/wire.h"
#include "src/service/query_service.h"
#include "src/service/session.h"

namespace ldb {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; bound_port() reports the kernel's choice (tests use
  /// this to avoid port races).
  uint16_t port = 0;
  /// Worker threads. Sized above max_concurrent + max_queue, the surplus
  /// converts into immediate ADMISSION errors — the intended backpressure.
  int n_workers = 4;
  /// Per-connection frame ceiling (tightens wire::kMaxFrameBytes).
  uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Stop reading from a connection while its outbox holds more than this.
  size_t outbox_limit_bytes = 4u << 20;
  /// Stop reading while this many decoded frames await processing.
  size_t max_pipeline = 8;
  /// FETCH batch size when the request says 0.
  uint32_t default_batch_rows = 1024;
  /// Soft byte bound per ROWS frame: a batch closes once it crosses this,
  /// so huge rows never inflate one response buffer.
  size_t batch_limit_bytes = 1u << 20;
  /// Graceful-drain budget; after it, in-flight queries are cancelled, and
  /// after the same interval again the sockets are closed regardless.
  int drain_timeout_ms = 5000;
  /// Session defaults for connections; HELLO fields override per-connection.
  SessionOptions session;
};

/// Counters for tests and the server binary's exit summary (the same values
/// feed the ldb_net_* metrics in the service registry).
struct ServerStats {
  uint64_t connections_total = 0;
  uint64_t connections_open = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_recv = 0;
  uint64_t frames_received = 0;
  uint64_t protocol_errors = 0;
};

class Server {
 public:
  /// The service must outlive the server. Metrics register into
  /// svc.metrics() under the ldb_net_* / ldb_connections_* names.
  Server(QueryService& svc, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the IO + worker threads. Throws ldb::Error
  /// on bind/listen failure.
  void Start();

  /// Port actually bound (== options.port unless that was 0).
  uint16_t bound_port() const { return bound_port_; }

  /// Graceful drain then stop (see file comment). Idempotent; blocks until
  /// every thread is joined. Safe to call from a signal-watching thread.
  void Shutdown();

  bool running() const { return started_ && !stopped_; }
  ServerStats stats() const LDB_EXCLUDES(stats_mu_);

 private:
  struct Conn;

  // IO-thread side.
  void IoLoop();
  void AcceptAll();
  void HandleReadable(const std::shared_ptr<Conn>& c);
  void HandleWritable(const std::shared_ptr<Conn>& c);
  void FlushOutbox(const std::shared_ptr<Conn>& c);
  void UpdateInterest(const std::shared_ptr<Conn>& c);
  void CloseConn(const std::shared_ptr<Conn>& c);
  void OnFrame(const std::shared_ptr<Conn>& c, Frame frame);
  bool AllConnsIdle();
  void CancelAllSessions();

  // Worker side. `recv` is the IO thread's wire-read timestamp for the
  // frame — the request-trace origin, and what queue_wait_ms (wire read ->
  // worker pickup) is measured from.
  void WorkerLoop() LDB_EXCLUDES(queue_mu_);
  void ProcessFrame(const std::shared_ptr<Conn>& c, const Frame& frame,
                    std::chrono::steady_clock::time_point recv);
  void EnqueueReply(const std::shared_ptr<Conn>& c, std::string bytes);
  void EnqueueError(const std::shared_ptr<Conn>& c, ErrorCode code,
                    const std::string& message);
  void ScheduleConn(const std::shared_ptr<Conn>& c) LDB_EXCLUDES(queue_mu_);
  void NotifyIo(const std::shared_ptr<Conn>& c) LDB_EXCLUDES(dirty_mu_);

  // Frame handlers (worker thread).
  void DoHello(const std::shared_ptr<Conn>& c, const Frame& f);
  void DoPrepare(const std::shared_ptr<Conn>& c, const Frame& f);
  void DoBind(const std::shared_ptr<Conn>& c, const Frame& f);
  void DoExecute(const std::shared_ptr<Conn>& c, const Frame& f,
                 std::chrono::steady_clock::time_point recv);
  void DoFetch(const std::shared_ptr<Conn>& c, const Frame& f);
  void DoIntrospect(const std::shared_ptr<Conn>& c, const Frame& f);

  /// Builds one bounded ROWS frame from the connection's cursor.
  std::string NextBatch(const std::shared_ptr<Conn>& c, uint32_t max_rows);

  QueryService& svc_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t bound_port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  Mutex shutdown_mu_;  ///< serializes concurrent Shutdown() calls

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  /// Connections, IO thread only (workers hold shared_ptrs handed to them).
  std::map<int, std::shared_ptr<Conn>> conns_;

  /// Worker queue: connections with pending frames.
  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<std::shared_ptr<Conn>> queue_ LDB_GUARDED_BY(queue_mu_);
  bool workers_stop_ LDB_GUARDED_BY(queue_mu_) = false;

  /// Connections whose outbox changed since the IO thread last looked.
  Mutex dirty_mu_;
  std::vector<std::weak_ptr<Conn>> dirty_ LDB_GUARDED_BY(dirty_mu_);

  /// Raw counters mirrored into the metrics registry.
  mutable Mutex stats_mu_;
  ServerStats stats_ LDB_GUARDED_BY(stats_mu_);

  /// Cached metric instruments (no-ops when metrics are compiled out).
  obs::Gauge* m_conns_open_ = nullptr;
  obs::Counter* m_conns_total_ = nullptr;
  obs::Counter* m_bytes_sent_ = nullptr;
  obs::Counter* m_bytes_recv_ = nullptr;
  obs::Counter* m_protocol_errors_ = nullptr;
  std::map<uint8_t, obs::Counter*> m_frames_;
};

}  // namespace net
}  // namespace ldb

#endif  // LAMBDADB_NET_SERVER_H_
