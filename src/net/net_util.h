// Small shared helpers for the network layer.

#ifndef LAMBDADB_NET_NET_UTIL_H_
#define LAMBDADB_NET_NET_UTIL_H_

#include <cstring>
#include <string>

namespace ldb {
namespace net {

/// Thread-safe strerror: renders `err` via strerror_r into a local buffer
/// (std::strerror shares one static buffer and is flagged by
/// clang-tidy's concurrency-mt-unsafe for good reason — the server
/// formats errno from both the IO thread and workers).
inline std::string ErrnoMessage(int err) {
  char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU variant: returns a char* that is either buf or a static immutable
  // string; either way the result is safe to copy.
  return std::string(strerror_r(err, buf, sizeof(buf)));
#else
  // XSI variant: fills buf, returns an error code.
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return std::string(buf);
#endif
}

}  // namespace net
}  // namespace ldb

#endif  // LAMBDADB_NET_NET_UTIL_H_
