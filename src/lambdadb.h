// lambdadb — a C++20 reproduction of Fegaras, "Query Unnesting in
// Object-Oriented Databases", SIGMOD 1998.
//
// This facade header pulls in the whole public API and provides one-call
// helpers for the common flows:
//
//   ldb::Database db = ldb::workload::MakeCompanyDatabase({});
//   ldb::Value r = ldb::RunOQL(db,
//       "select distinct struct(E: e.name, C: c.name) "
//       "from e in Employees, c in e.children");
//
// See README.md for the architecture overview and DESIGN.md for the mapping
// from the paper's figures/rules to modules.

#ifndef LAMBDADB_LAMBDADB_H_
#define LAMBDADB_LAMBDADB_H_

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/algebra.h"
#include "src/core/catalog.h"
#include "src/core/cost.h"
#include "src/core/expr.h"
#include "src/core/materialize.h"
#include "src/core/monoid.h"
#include "src/core/normalize.h"
#include "src/core/optimizer.h"
#include "src/core/pretty.h"
#include "src/core/simplify.h"
#include "src/core/type.h"
#include "src/core/typecheck.h"
#include "src/core/unnest.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/trace_export.h"
#include "src/oql/odl.h"
#include "src/oql/parser.h"
#include "src/oql/translate.h"
#include "src/runtime/database.h"
#include "src/runtime/error.h"
#include "src/runtime/eval_algebra.h"
#include "src/runtime/eval_calculus.h"
#include "src/runtime/exec_pipeline.h"
#include "src/runtime/expr_eval.h"
#include "src/runtime/physical.h"
#include "src/runtime/physical_plan.h"
#include "src/runtime/profile.h"
#include "src/runtime/schema.h"
#include "src/runtime/serialize.h"
#include "src/runtime/value.h"
#include "src/service/plan_cache.h"
#include "src/service/query_service.h"
#include "src/service/session.h"
#include "src/verify/calc_parser.h"
#include "src/verify/verify.h"

namespace ldb {

/// Parses OQL and translates it into the monoid calculus. Top-level
/// `order by` is not expressible in the calculus (ordered collections are
/// the paper's future work) — RunOQL handles it at the facade.
inline ExprPtr ParseOQL(const std::string& oql) {
  return oql::Translate(oql::Parse(oql));
}

namespace internal {

/// Sorts the wrapped <key$, val$> rows of an ordered query's result by key$
/// (with per-key descending flags) and projects val$ into a list.
inline Value SortOrderedResult(const Value& wrapped,
                               const std::vector<bool>& descending) {
  Elems rows = wrapped.AsElems();
  std::stable_sort(rows.begin(), rows.end(), [&](const Value& a, const Value& b) {
    const Fields& ka = a.Field("key$").AsTuple();
    const Fields& kb = b.Field("key$").AsTuple();
    for (size_t i = 0; i < ka.size(); ++i) {
      int c = Value::Compare(ka[i].second, kb[i].second);
      if (i < descending.size() && descending[i]) c = -c;
      if (c != 0) return c < 0;
    }
    return false;
  });
  Elems out;
  out.reserve(rows.size());
  for (const Value& row : rows) out.push_back(row.Field("val$"));
  return Value::List(std::move(out));
}

}  // namespace internal

/// Parses, optimizes (normalize + unnest + simplify + physical), executes.
/// A top-level `order by` yields a LIST, sorted after execution (under
/// `distinct`, deduplication applies to (key, value) pairs).
inline Value RunOQL(const Database& db, const std::string& oql,
                    OptimizerOptions options = {}) {
  Optimizer opt(db.schema(), options);
  oql::OrderedQuery q = oql::TranslateWithOrdering(oql::Parse(oql));
  Value result = opt.Run(q.comp, db);
  if (!q.ordered) return result;
  return internal::SortOrderedResult(result, q.descending);
}

/// Parses and evaluates with the naive nested-loop baseline (no unnesting).
inline Value RunOQLBaseline(const Database& db, const std::string& oql) {
  oql::OrderedQuery q = oql::TranslateWithOrdering(oql::Parse(oql));
  Value result = EvalCalculus(q.comp, db);
  if (!q.ordered) return result;
  return internal::SortOrderedResult(result, q.descending);
}

/// Parses, compiles, and returns every intermediate stage (for printing the
/// paper's plan figures). The query must be comprehension-rooted.
inline CompiledQuery CompileOQL(const Schema& schema, const std::string& oql,
                                OptimizerOptions options = {}) {
  Optimizer opt(schema, options);
  return opt.Compile(ParseOQL(oql));
}

}  // namespace ldb

#endif  // LAMBDADB_LAMBDADB_H_
